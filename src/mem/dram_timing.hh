// Bank-state DRAM timing engine.
//
// Models, per channel: an open-row bank state machine (ACT/PRE/CAS timing),
// a shared data bus that serialises bursts (the bandwidth bound), and
// periodic refresh windows. Requests larger than the access granularity are
// split into bursts by the caller (MemCtrl), either one at a time via
// access() or as a whole consecutive run via access_run().
//
// This is the "ramulator2-like" substitute described in DESIGN.md: it
// reproduces the first-order latency/bandwidth/row-locality differences
// between DRAM technologies without cycle-accurate command scheduling.
//
// Hot-path structure: all timing parameters are converted to ticks once at
// construction (no per-burst ns->tick FP math), address decode is shift/mask
// when every geometry field is a power of two (with a division fallback for
// exotic widths), and a one-entry (channel,bank,row) memo short-circuits the
// decode for the consecutive-burst and repeated-probe patterns. The open row
// of every bank is mirrored in a flat packed-key table so the FR-FCFS
// scheduler can test row hits with one 64-bit compare per queued request —
// see packed_key() / open_keys().
#pragma once

#include <cstdint>
#include <vector>

#include "mem/dram_config.hh"
#include "sim/types.hh"

namespace accesys {
class Ckpt;
}

namespace accesys::mem {

class DramTiming {
  public:
    explicit DramTiming(const DramParams& params);

    struct Access {
        Tick data_ready;     ///< tick the last data beat arrives
        Tick bus_busy_until; ///< earliest tick the channel can start another burst
        bool row_hit;
        unsigned channel;
    };

    /// Timing for one burst-sized access starting no earlier than `t`.
    [[nodiscard]] Access access(Addr addr, bool is_write, Tick t)
    {
        return access_run(addr, 1, is_write, t);
    }

    /// Timing for `n_bursts` consecutive burst-sized accesses starting at
    /// `addr`, each issued no earlier than `t` — bit-equivalent to calling
    /// access() in a loop with `addr += burst_bytes()`, but walking the bank
    /// state machine with an incremental burst index and the decode memo
    /// instead of a full decode per burst. Returns the max data_ready across
    /// the run, the last touched channel's bus horizon, and the last burst's
    /// row-hit flag and channel.
    [[nodiscard]] Access access_run(Addr addr, std::uint64_t n_bursts,
                                    bool is_write, Tick t);

    /// Would `addr` hit the currently-open row? (FR-FCFS scheduling probe.)
    [[nodiscard]] bool peek_row_hit(Addr addr) const
    {
        const std::uint64_t key = packed_key(addr);
        return open_keys_[key & slot_mask_] == key;
    }

    // --- FR-FCFS packed-key interface --------------------------------------
    // A packed key encodes (channel,bank,row) as `row << slot_bits | slot`
    // with slot = channel*banks + bank. The scheduler stores one key per
    // queued read at admission; a read is a row hit iff its key equals the
    // open-row key of its bank slot, so the window scan needs no decode.

    /// Packed (channel,bank,row) key for `addr`.
    [[nodiscard]] std::uint64_t packed_key(Addr addr) const
    {
        const Coord c = decode(addr);
        return (c.row << slot_bits_) |
               (static_cast<std::uint64_t>(c.channel) * params_.banks +
                c.bank);
    }

    /// Per-bank open-row keys, indexed by `key & slot_mask()`; a closed
    /// bank holds kNoOpenKey, which matches no packed key.
    [[nodiscard]] const std::uint64_t* open_keys() const noexcept
    {
        return open_keys_.data();
    }
    [[nodiscard]] std::uint64_t slot_mask() const noexcept
    {
        return slot_mask_;
    }

    static constexpr std::uint64_t kNoOpenKey = ~0ULL;

    [[nodiscard]] const DramParams& params() const noexcept
    {
        return params_;
    }

    // Aggregate counters (read by MemCtrl stats).
    [[nodiscard]] std::uint64_t row_hits() const noexcept
    {
        return row_hits_;
    }
    [[nodiscard]] std::uint64_t row_misses() const noexcept
    {
        return row_misses_;
    }
    [[nodiscard]] std::uint64_t bursts() const noexcept { return bursts_; }
    [[nodiscard]] std::uint64_t refreshes() const noexcept
    {
        return refreshes_;
    }

    /// Address decomposition, exposed for tests.
    struct Coord {
        unsigned channel;
        unsigned bank;
        std::uint64_t row;
    };
    [[nodiscard]] Coord decode(Addr addr) const;

    /// Checkpoint/restore bank/bus/refresh state and the burst counters
    /// (the decode memo is a pure cache and is simply invalidated).
    void serialize(Ckpt& ar);

  private:
    static constexpr std::uint64_t kNoRow = ~0ULL;

    struct Bank {
        std::uint64_t open_row = kNoRow;
        Tick ready_at = 0;    ///< earliest next column command
        Tick act_done = 0;    ///< tRAS horizon of the current activation
    };

    struct Channel {
        std::vector<Bank> banks;
        Tick bus_free = 0;
        Tick next_refresh = 0;
    };

    /// Decode by burst index (addr / burst_bytes) — the access_run walk
    /// steps this by one per burst instead of re-deriving it from the
    /// address.
    [[nodiscard]] Coord decode_burst(std::uint64_t burst) const;

    /// Apply any refresh windows that open before `t` on channel `ch`.
    Tick apply_refresh(Channel& ch, unsigned ch_idx, Tick t);

    DramParams params_;
    std::vector<Channel> channels_;

    // Shift/mask decode constants (valid when fast_decode_): see ctor.
    bool fast_decode_ = false;
    unsigned burst_shift_ = 0; ///< log2(burst_bytes)
    unsigned ch_shift_ = 0;    ///< log2(channels)
    unsigned ch_mask_ = 0;
    unsigned rs_shift_ = 0;    ///< log2(row_bytes / burst_bytes)
    unsigned bank_shift_ = 0;  ///< log2(banks)
    unsigned bank_mask_ = 0;

    // Timing parameters in ticks, converted once (access() used to redo the
    // ns->tick FP conversion for every parameter on every burst).
    Tick tCL_t_ = 0;
    Tick tRCD_t_ = 0;
    Tick tRP_t_ = 0;
    Tick tRAS_t_ = 0;
    Tick tRFC_t_ = 0;
    Tick tREFI_t_ = 0;
    Tick burst_t_ = 0;
    Tick write_recovery_t_ = 0; ///< burst_t_ * 2

    // Packed-key mirror of every bank's open row (see packed_key()).
    unsigned slot_bits_ = 0;
    std::uint64_t slot_mask_ = 0;
    std::vector<std::uint64_t> open_keys_;

    // One-entry decode memo: consecutive bursts share (channel,bank,row)
    // for row_bytes/burst_bytes steps, and FR-FCFS fallback probes repeat
    // addresses; both hit this instead of the full decode.
    mutable std::uint64_t memo_burst_ = ~0ULL;
    mutable Coord memo_coord_{0, 0, 0};

    std::uint64_t row_hits_ = 0;
    std::uint64_t row_misses_ = 0;
    std::uint64_t bursts_ = 0;
    std::uint64_t refreshes_ = 0;
};

} // namespace accesys::mem
