// Bank-state DRAM timing engine.
//
// Models, per channel: an open-row bank state machine (ACT/PRE/CAS timing),
// a shared data bus that serialises bursts (the bandwidth bound), and
// periodic refresh windows. Requests larger than the access granularity are
// split into bursts by the caller (MemCtrl).
//
// This is the "ramulator2-like" substitute described in DESIGN.md: it
// reproduces the first-order latency/bandwidth/row-locality differences
// between DRAM technologies without cycle-accurate command scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/dram_config.hh"
#include "sim/types.hh"

namespace accesys::mem {

class DramTiming {
  public:
    explicit DramTiming(const DramParams& params);

    struct Access {
        Tick data_ready;     ///< tick the last data beat arrives
        Tick bus_busy_until; ///< earliest tick the channel can start another burst
        bool row_hit;
        unsigned channel;
    };

    /// Timing for one burst-sized access starting no earlier than `t`.
    [[nodiscard]] Access access(Addr addr, bool is_write, Tick t);

    /// Would `addr` hit the currently-open row? (FR-FCFS scheduling probe.)
    [[nodiscard]] bool peek_row_hit(Addr addr) const
    {
        const Coord c = decode(addr);
        return channels_[c.channel].banks[c.bank].open_row == c.row;
    }

    [[nodiscard]] const DramParams& params() const noexcept
    {
        return params_;
    }

    // Aggregate counters (read by MemCtrl stats).
    [[nodiscard]] std::uint64_t row_hits() const noexcept
    {
        return row_hits_;
    }
    [[nodiscard]] std::uint64_t row_misses() const noexcept
    {
        return row_misses_;
    }
    [[nodiscard]] std::uint64_t bursts() const noexcept { return bursts_; }
    [[nodiscard]] std::uint64_t refreshes() const noexcept
    {
        return refreshes_;
    }

    /// Address decomposition, exposed for tests.
    struct Coord {
        unsigned channel;
        unsigned bank;
        std::uint64_t row;
    };
    [[nodiscard]] Coord decode(Addr addr) const;

  private:
    static constexpr std::uint64_t kNoRow = ~0ULL;

    struct Bank {
        std::uint64_t open_row = kNoRow;
        Tick ready_at = 0;    ///< earliest next column command
        Tick act_done = 0;    ///< tRAS horizon of the current activation
    };

    struct Channel {
        std::vector<Bank> banks;
        Tick bus_free = 0;
        Tick next_refresh = 0;
    };

    /// Apply any refresh windows that open before `t` on channel `ch`.
    Tick apply_refresh(Channel& ch, Tick t);

    DramParams params_;
    std::vector<Channel> channels_;
    std::uint64_t row_hits_ = 0;
    std::uint64_t row_misses_ = 0;
    std::uint64_t bursts_ = 0;
    std::uint64_t refreshes_ = 0;
};

} // namespace accesys::mem
