#include "mem/dram_timing.hh"

#include <algorithm>

namespace accesys::mem {

DramTiming::DramTiming(const DramParams& params) : params_(params)
{
    params_.validate();
    channels_.resize(params_.channels);
    for (auto& ch : channels_) {
        ch.banks.resize(params_.banks);
        ch.next_refresh = params_.tREFI();
    }
}

DramTiming::Coord DramTiming::decode(Addr addr) const
{
    // Interleave channels at burst granularity, banks at row granularity:
    //   [ row | bank | channel | offset-in-burst ]
    // Streaming accesses then spread across channels and keep rows open.
    const std::uint64_t burst = addr / params_.burst_bytes();
    const unsigned channel =
        static_cast<unsigned>(burst % params_.channels);
    const std::uint64_t rows_space =
        burst / params_.channels * params_.burst_bytes() / params_.row_bytes;
    const unsigned bank = static_cast<unsigned>(rows_space % params_.banks);
    const std::uint64_t row = rows_space / params_.banks;
    return Coord{channel, bank, row};
}

Tick DramTiming::apply_refresh(Channel& ch, Tick t)
{
    if (!params_.refresh_enabled) {
        return t;
    }
    while (t >= ch.next_refresh) {
        const Tick refresh_end = ch.next_refresh + params_.tRFC();
        for (auto& bank : ch.banks) {
            // Refresh closes all rows and stalls the banks.
            bank.open_row = kNoRow;
            bank.ready_at = std::max(bank.ready_at, refresh_end);
        }
        ch.bus_free = std::max(ch.bus_free, refresh_end);
        ch.next_refresh += params_.tREFI();
        ++refreshes_;
        t = std::max(t, refresh_end);
    }
    return t;
}

DramTiming::Access DramTiming::access(Addr addr, bool is_write, Tick t)
{
    const Coord c = decode(addr);
    Channel& ch = channels_[c.channel];
    Bank& bank = ch.banks[c.bank];

    t = apply_refresh(ch, t);
    Tick cmd = std::max(t, bank.ready_at);

    bool row_hit = false;
    if (bank.open_row == c.row) {
        row_hit = true;
        ++row_hits_;
    } else {
        ++row_misses_;
        // Precharge (if a row is open and tRAS allows) then activate.
        if (bank.open_row != kNoRow) {
            cmd = std::max(cmd, bank.act_done);
            cmd += params_.tRP();
        }
        cmd += params_.tRCD();
        bank.open_row = c.row;
        bank.act_done = cmd + params_.tRAS();
    }

    // CAS latency applies once per access (latency); throughput is bounded
    // by column-command pacing (tCCD ~= one burst) and data-bus occupancy,
    // so back-to-back row hits stream at the full burst rate.
    const Tick cas_done = cmd + params_.tCL();
    const Tick burst_start = std::max(cas_done, ch.bus_free);
    const Tick data_ready = burst_start + params_.burst_ticks();
    ch.bus_free = data_ready;

    // Next column command to this bank; writes add a recovery window.
    bank.ready_at = cmd + (is_write ? params_.burst_ticks() * 2
                                    : params_.burst_ticks());
    ++bursts_;

    return Access{data_ready, ch.bus_free, row_hit, c.channel};
}

} // namespace accesys::mem
