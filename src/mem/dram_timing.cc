#include "mem/dram_timing.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::mem {

DramTiming::DramTiming(const DramParams& params) : params_(params)
{
    params_.validate();

    tCL_t_ = params_.tCL();
    tRCD_t_ = params_.tRCD();
    tRP_t_ = params_.tRP();
    tRAS_t_ = params_.tRAS();
    tRFC_t_ = params_.tRFC();
    tREFI_t_ = params_.tREFI();
    burst_t_ = params_.burst_ticks();
    write_recovery_t_ = burst_t_ * 2;

    // validate() guarantees banks and row_bytes are powers of two; the
    // burst size and channel count usually are too, enabling the pure
    // shift/mask decode. Exotic widths (e.g. 24-bit channels) fall back to
    // the division path in decode_burst.
    fast_decode_ =
        is_pow2(params_.burst_bytes()) && is_pow2(params_.channels);
    if (fast_decode_) {
        burst_shift_ = log2i(params_.burst_bytes());
        ch_shift_ = log2i(params_.channels);
        ch_mask_ = params_.channels - 1;
        rs_shift_ = log2i(params_.row_bytes) - burst_shift_;
        bank_shift_ = log2i(params_.banks);
        bank_mask_ = params_.banks - 1;
    }

    const std::uint64_t slots =
        std::uint64_t{params_.channels} * params_.banks;
    slot_bits_ = 1;
    while ((std::uint64_t{1} << slot_bits_) < slots) {
        ++slot_bits_;
    }
    slot_mask_ = (std::uint64_t{1} << slot_bits_) - 1;
    open_keys_.assign(std::size_t{1} << slot_bits_, kNoOpenKey);

    channels_.resize(params_.channels);
    for (auto& ch : channels_) {
        ch.banks.resize(params_.banks);
        ch.next_refresh = tREFI_t_;
    }
}

DramTiming::Coord DramTiming::decode_burst(std::uint64_t burst) const
{
    if (burst == memo_burst_) {
        return memo_coord_;
    }
    // Interleave channels at burst granularity, banks at row granularity:
    //   [ row | bank | channel | offset-in-burst ]
    // Streaming accesses then spread across channels and keep rows open.
    Coord c;
    if (fast_decode_) {
        c.channel = static_cast<unsigned>(burst) & ch_mask_;
        const std::uint64_t rows_space = (burst >> ch_shift_) >> rs_shift_;
        c.bank = static_cast<unsigned>(rows_space) & bank_mask_;
        c.row = rows_space >> bank_shift_;
    } else {
        c.channel = static_cast<unsigned>(burst % params_.channels);
        const std::uint64_t rows_space = burst / params_.channels *
                                         params_.burst_bytes() /
                                         params_.row_bytes;
        c.bank = static_cast<unsigned>(rows_space % params_.banks);
        c.row = rows_space / params_.banks;
    }
    memo_burst_ = burst;
    memo_coord_ = c;
    return c;
}

DramTiming::Coord DramTiming::decode(Addr addr) const
{
    return decode_burst(fast_decode_ ? addr >> burst_shift_
                                     : addr / params_.burst_bytes());
}

Tick DramTiming::apply_refresh(Channel& ch, unsigned ch_idx, Tick t)
{
    while (t >= ch.next_refresh) {
        const Tick refresh_end = ch.next_refresh + tRFC_t_;
        for (auto& bank : ch.banks) {
            // Refresh closes all rows and stalls the banks.
            bank.open_row = kNoRow;
            bank.ready_at = std::max(bank.ready_at, refresh_end);
        }
        std::fill_n(open_keys_.begin() +
                        static_cast<std::ptrdiff_t>(
                            std::uint64_t{ch_idx} * params_.banks),
                    params_.banks, kNoOpenKey);
        ch.bus_free = std::max(ch.bus_free, refresh_end);
        ch.next_refresh += tREFI_t_;
        ++refreshes_;
        t = std::max(t, refresh_end);
    }
    return t;
}

DramTiming::Access DramTiming::access_run(Addr addr, std::uint64_t n_bursts,
                                          bool is_write, Tick t)
{
    const std::uint64_t burst0 = fast_decode_
                                     ? addr >> burst_shift_
                                     : addr / params_.burst_bytes();
    const Tick bank_recovery = is_write ? write_recovery_t_ : burst_t_;
    const bool refresh = params_.refresh_enabled;

    Access out{0, 0, false, 0};
    std::uint64_t hits = 0;

    for (std::uint64_t i = 0; i < n_bursts; ++i) {
        const Coord c = decode_burst(burst0 + i);
        Channel& ch = channels_[c.channel];
        Bank& bank = ch.banks[c.bank];

        // Each burst in the run starts no earlier than the caller's `t`
        // (matching the per-burst access() loop, which passed the same
        // start tick every iteration); a refresh window can push an
        // individual burst's command later.
        Tick bt = refresh ? apply_refresh(ch, c.channel, t) : t;
        Tick cmd = std::max(bt, bank.ready_at);

        bool row_hit = false;
        if (bank.open_row == c.row) {
            row_hit = true;
            ++hits;
        } else {
            ++row_misses_;
            // Precharge (if a row is open and tRAS allows) then activate.
            if (bank.open_row != kNoRow) {
                cmd = std::max(cmd, bank.act_done);
                cmd += tRP_t_;
            }
            cmd += tRCD_t_;
            bank.open_row = c.row;
            bank.act_done = cmd + tRAS_t_;
            open_keys_[std::uint64_t{c.channel} * params_.banks + c.bank] =
                (c.row << slot_bits_) |
                (std::uint64_t{c.channel} * params_.banks + c.bank);
        }

        // CAS latency applies once per access (latency); throughput is
        // bounded by column-command pacing (tCCD ~= one burst) and data-bus
        // occupancy, so back-to-back row hits stream at the full burst rate.
        const Tick cas_done = cmd + tCL_t_;
        const Tick burst_start = std::max(cas_done, ch.bus_free);
        const Tick data_ready = burst_start + burst_t_;
        ch.bus_free = data_ready;

        // Next column command to this bank; writes add a recovery window.
        bank.ready_at = cmd + bank_recovery;

        out.data_ready = std::max(out.data_ready, data_ready);
        out.bus_busy_until = ch.bus_free;
        out.row_hit = row_hit;
        out.channel = c.channel;
    }

    row_hits_ += hits;
    bursts_ += n_bursts;
    return out;
}

void DramTiming::serialize(Ckpt& ar)
{
    for (Channel& ch : channels_) {
        for (Bank& b : ch.banks) {
            ar.io(b.open_row, b.ready_at, b.act_done);
        }
        ar.io(ch.bus_free, ch.next_refresh);
    }
    ar.pod_vec(open_keys_);
    ar.io(row_hits_, row_misses_, bursts_, refreshes_);
    if (ar.loading()) {
        memo_burst_ = ~0ULL; // pure decode cache; rebuilt on first access
    }
}

} // namespace accesys::mem
