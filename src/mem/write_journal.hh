// Per-domain staging of device->host functional writes.
//
// Under the parallel event core a device domain must not write host memory
// mid-window: the root thread (host CPU poll loops, stat probes) may be
// reading the same bytes. Instead the domain snapshots the source bytes at
// the moment the write logically happens and appends a journal record; the
// root thread applies records in tick order while the domain is quiesced —
// fully at window barriers, or as a prefix (tick <= t) at mid-window read
// fences (Simulator::sync_functional_reads). Applying a prefix preserves
// the serial run's read-after-write values exactly: a serial poll at tick
// t observes precisely the dev->host copies submitted at ticks <= t.
//
// Thread contract: record() runs on the owning domain's thread; drain
// calls run on the root thread only while the domain is quiesced (the
// done_clock acquire at the barrier/fence is the happens-before edge).
// The two are never concurrent, so the journal itself needs no locks.
//
// Records and snapshot bytes live in flat vectors compacted only when the
// journal drains completely (every barrier does, since a window's records
// all carry ticks below the window end), so the steady state reuses
// capacity and allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::mem {

class WriteJournal {
  public:
    WriteJournal() = default;
    WriteJournal(const WriteJournal&) = delete;
    WriteJournal& operator=(const WriteJournal&) = delete;

    /// Stage a write of `n` bytes to `dst`, snapshotting the current
    /// contents of `src` (device-local memory — safe to read on the
    /// domain thread) from `store`. `t` is the write's logical tick;
    /// event-order recording makes ticks nondecreasing.
    void record(Tick t, const BackingStore& store, Addr dst, Addr src,
                std::uint64_t n)
    {
        ensure(recs_.empty() || recs_.back().tick <= t,
               "write journal ticks must be nondecreasing");
        const std::uint64_t off = bytes_.size();
        bytes_.resize(off + n);
        store.read(src, bytes_.data() + off, n);
        recs_.push_back(Rec{t, dst, off, n});
        ++recorded_total_;
    }

    /// Apply every staged record with tick <= `t` to `store`, in record
    /// (= tick) order. Root thread only, domain quiesced.
    void apply_until(BackingStore& store, Tick t)
    {
        while (next_ < recs_.size() && recs_[next_].tick <= t) {
            const Rec& r = recs_[next_];
            store.write(r.dst, bytes_.data() + r.off, r.bytes);
            ++next_;
        }
        if (next_ == recs_.size()) {
            // Fully drained: recycle capacity so offsets restart at zero.
            recs_.clear();
            bytes_.clear();
            next_ = 0;
        }
    }

    [[nodiscard]] bool empty() const noexcept { return recs_.empty(); }
    /// Records staged over the journal's lifetime (drained or not).
    [[nodiscard]] std::uint64_t recorded_total() const noexcept
    {
        return recorded_total_;
    }

  private:
    struct Rec {
        Tick tick;
        Addr dst;
        std::uint64_t off;   ///< offset of the snapshot in `bytes_`
        std::uint64_t bytes;
    };

    std::vector<Rec> recs_;
    std::vector<std::uint8_t> bytes_; ///< snapshot arena
    std::size_t next_ = 0;            ///< first unapplied record
    std::uint64_t recorded_total_ = 0;
};

} // namespace accesys::mem
