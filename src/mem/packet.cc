#include "mem/packet.hh"

#include <sstream>

#include "sim/serialize.hh"

namespace accesys::mem {

namespace {
std::uint32_t next_requestor_id = 1;
} // namespace

std::uint32_t alloc_requestor_id()
{
    return next_requestor_id++;
}

void reset_requestor_ids()
{
    next_requestor_id = 1;
}

std::string Packet::describe() const
{
    std::ostringstream os;
    os << to_string(cmd_) << " addr=0x" << std::hex << addr_ << std::dec
       << " size=" << size_ << " req=" << requestor_ << " tag=" << tag_;
    if (flags.uncacheable) {
        os << " UC";
    }
    if (flags.from_device) {
        os << " DEV";
    }
    if (flags.needs_translation) {
        os << " VA";
    }
    return os.str();
}

PacketPool::~PacketPool()
{
    for (Packet* p : free_) {
        delete p;
    }
}

void PacketPool::reserve(std::size_t n)
{
    free_.reserve(free_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
        ++allocs_total_;
        lifetime_allocs_.fetch_add(1, std::memory_order_relaxed);
        Packet* p = new Packet(MemCmd::read_req, 0, 0);
        p->pool_ = this;
        free_.push_back(p);
    }
}

PacketPool& PacketPool::global()
{
    // Leaked intentionally: packets may be recycled from destructors of
    // static-storage objects, so the pool must outlive all of them.
    static PacketPool* pool = new PacketPool();
    return *pool;
}

thread_local PacketPool* PacketPool::current_ = nullptr;
std::atomic<std::uint64_t> PacketPool::lifetime_allocs_{0};

void Packet::serialize(Ckpt& ar)
{
    ar.io(cmd_, addr_, size_, orig_addr_, requestor_, stream_, tag_,
          created_at_, flags.uncacheable, flags.from_device,
          flags.needs_translation, flags.posted, flags.poisoned,
          route_depth_, payload_size_);
    ar.raw(route_.data(), route_.size() * sizeof(route_[0]));
    ar.raw(payload_.data(), payload_.size());
}

void PacketPool::serialize_counters(Ckpt& ar)
{
    ar.io(allocs_total_, acquires_total_, recycles_total_);
}

void ckpt_packet(Ckpt& ar, PacketPtr& pkt)
{
    std::uint8_t present = pkt != nullptr ? 1 : 0;
    ar.io(present);
    if (present == 0) {
        if (ar.loading()) {
            pkt.reset();
        }
        return;
    }
    if (ar.loading()) {
        pkt = PacketPool::current().make(MemCmd::read_req, 0, 0);
    }
    pkt->serialize(ar);
}

} // namespace accesys::mem
