#include "mem/packet.hh"

#include <sstream>

namespace accesys::mem {

std::uint32_t alloc_requestor_id()
{
    static std::uint32_t next = 1;
    return next++;
}

std::string Packet::describe() const
{
    std::ostringstream os;
    os << to_string(cmd_) << " addr=0x" << std::hex << addr_ << std::dec
       << " size=" << size_ << " req=" << requestor_ << " tag=" << tag_;
    if (flags.uncacheable) {
        os << " UC";
    }
    if (flags.from_device) {
        os << " DEV";
    }
    if (flags.needs_translation) {
        os << " VA";
    }
    return os.str();
}

} // namespace accesys::mem
