// Synthetic traffic generator for memory-system characterisation.
//
// Drives a RequestPort with a configurable stream (sequential or random,
// reads or writes, bounded outstanding window) and reports achieved
// bandwidth and latency. Used by Table III validation benches and the
// memory/cache test suites.
#pragma once

#include <functional>

#include "mem/port.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace accesys::mem {

struct TrafficGenParams {
    Addr base = 0;
    std::uint64_t working_set = 1 * kMiB; ///< wraps within [base, base+ws)
    std::uint64_t total_bytes = 4 * kMiB; ///< stop after this much traffic
    std::uint32_t req_bytes = 64;
    unsigned window = 16;       ///< outstanding requests
    double write_fraction = 0.0;
    bool random_addresses = false;
    std::uint64_t seed = 1;

    void validate() const;
};

class TrafficGen final : public SimObject, private Requestor {
  public:
    TrafficGen(Simulator& sim, std::string name,
               const TrafficGenParams& params);

    [[nodiscard]] RequestPort& port() noexcept { return port_; }

    /// Begin streaming; `on_done` fires when the last response returns.
    void start(std::function<void()> on_done = {});

    [[nodiscard]] bool done() const noexcept { return done_; }
    [[nodiscard]] Tick elapsed() const noexcept
    {
        return end_tick_ - start_tick_;
    }
    [[nodiscard]] double achieved_gbps() const;
    [[nodiscard]] double mean_read_latency_ns() const
    {
        return latency_ns_.mean();
    }

    /// Stream position and window occupancy. `on_done_` is a closure and
    /// follows the restore protocol: the restoring process re-calls
    /// start() with the same callback before loading the snapshot.
    void serialize(Ckpt& ar) override;

  private:
    bool recv_resp(PacketPtr& pkt) override;
    void retry_req() override
    {
        blocked_ = false;
        pump();
    }

    void pump();
    void finish();
    [[nodiscard]] Addr next_addr();

    TrafficGenParams params_;
    RequestPort port_;
    Rng rng_;
    std::function<void()> on_done_;

    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0; ///< responses received (reads/nonposted)
    std::uint64_t acked_bytes_ = 0;
    unsigned in_flight_ = 0;
    bool blocked_ = false;
    bool done_ = false;
    Tick start_tick_ = 0;
    Tick end_tick_ = 0;

    stats::Scalar n_reads_{stat_group(), "reads", "read requests issued"};
    stats::Scalar n_writes_{stat_group(), "writes", "write requests issued"};
    stats::Average latency_ns_{stat_group(), "latency_ns",
                               "read round-trip latency (ns)"};
};

} // namespace accesys::mem
