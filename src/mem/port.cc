#include "mem/port.hh"

#include "sim/serialize.hh"

namespace accesys::mem {

void RequestPort::bind(ResponsePort& peer)
{
    ensure(peer_ == nullptr, "request port already bound: ", name_);
    ensure(peer.peer_ == nullptr, "response port already bound: ",
           peer.name_);
    peer_ = &peer;
    peer.peer_ = this;
}

void RequestPort::serialize(Ckpt& ar)
{
    ar.io(want_retry_);
}

void ResponsePort::serialize(Ckpt& ar)
{
    ar.io(want_retry_);
}

void PacketQueue::serialize(Ckpt& ar)
{
    ar.io(blocked_);
    send_event_.serialize(ar, *eq_);
    std::uint64_t n = q_.size();
    ar.io(n);
    if (ar.saving()) {
        for (std::size_t i = 0; i < n; ++i) {
            Entry& e = q_[i];
            ar.io(e.ready);
            ckpt_packet(ar, e.pkt);
        }
    } else {
        q_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            Entry e;
            ar.io(e.ready);
            ckpt_packet(ar, e.pkt);
            q_.push_back(std::move(e));
        }
    }
}

} // namespace accesys::mem
