#include "mem/port.hh"

namespace accesys::mem {

void RequestPort::bind(ResponsePort& peer)
{
    ensure(peer_ == nullptr, "request port already bound: ", name_);
    ensure(peer.peer_ == nullptr, "response port already bound: ",
           peer.name_);
    peer_ = &peer;
    peer.peer_ = this;
}

bool RequestPort::send_req(PacketPtr& pkt)
{
    ensure(peer_ != nullptr, "unbound request port: ", name_);
    ensure(pkt != nullptr && pkt->is_request(),
           "send_req needs a request packet on ", name_);
    if (peer_->owner_->recv_req(pkt)) {
        return true;
    }
    peer_->want_retry_ = true;
    return false;
}

void RequestPort::send_retry_resp()
{
    ensure(peer_ != nullptr, "unbound request port: ", name_);
    if (want_retry_) {
        want_retry_ = false;
        peer_->owner_->retry_resp();
    }
}

bool ResponsePort::send_resp(PacketPtr& pkt)
{
    ensure(peer_ != nullptr, "unbound response port: ", name_);
    ensure(pkt != nullptr && pkt->is_response(),
           "send_resp needs a response packet on ", name_);
    if (peer_->owner_->recv_resp(pkt)) {
        return true;
    }
    peer_->want_retry_ = true;
    return false;
}

void ResponsePort::send_retry_req()
{
    ensure(peer_ != nullptr, "unbound response port: ", name_);
    if (want_retry_) {
        want_retry_ = false;
        peer_->owner_->retry_req();
    }
}

} // namespace accesys::mem
