#include "mem/port.hh"

namespace accesys::mem {

void RequestPort::bind(ResponsePort& peer)
{
    ensure(peer_ == nullptr, "request port already bound: ", name_);
    ensure(peer.peer_ == nullptr, "response port already bound: ",
           peer.name_);
    peer_ = &peer;
    peer.peer_ = this;
}

} // namespace accesys::mem
