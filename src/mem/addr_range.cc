#include "mem/addr_range.hh"

#include <sstream>

namespace accesys::mem {

std::string AddrRange::describe() const
{
    std::ostringstream os;
    os << "[0x" << std::hex << start_ << ", 0x" << end_ << ")" << std::dec;
    return os.str();
}

void check_disjoint(const std::vector<AddrRange>& ranges)
{
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        for (std::size_t j = i + 1; j < ranges.size(); ++j) {
            require_cfg(!ranges[i].overlaps(ranges[j]),
                        "overlapping address ranges: ",
                        ranges[i].describe(), " vs ", ranges[j].describe());
        }
    }
}

} // namespace accesys::mem
