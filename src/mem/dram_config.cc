#include "mem/dram_config.hh"

#include <algorithm>
#include <cctype>

namespace accesys::mem {

void DramParams::validate() const
{
    require_cfg(channels >= 1 && channels <= 64, name,
                ": channels out of range");
    require_cfg(data_width_bits % 8 == 0 && data_width_bits > 0, name,
                ": width must be a multiple of 8 bits");
    require_cfg(data_rate_mts > 0, name, ": zero data rate");
    require_cfg(is_pow2(banks), name, ": banks must be a power of two");
    require_cfg(is_pow2(burst_length), name,
                ": burst length must be a power of two");
    require_cfg(is_pow2(row_bytes) && row_bytes >= burst_bytes(), name,
                ": row must be a power of two and hold a burst");
    require_cfg(tCL_ns > 0 && tRCD_ns > 0 && tRP_ns > 0, name,
                ": core timings must be positive");
    require_cfg(tRAS_ns >= tRCD_ns, name, ": tRAS must cover tRCD");
}

DramParams ddr3_1600()
{
    DramParams p;
    p.name = "DDR3-1600";
    p.channels = 1;
    p.data_width_bits = 64;
    p.data_rate_mts = 1600;
    p.banks = 8;
    p.burst_length = 8;
    p.row_bytes = 8 * kKiB;
    p.tCL_ns = 13.75;
    p.tRCD_ns = 13.75;
    p.tRP_ns = 13.75;
    p.tRAS_ns = 35.0;
    p.tRFC_ns = 260.0;
    return p;
}

DramParams ddr4_2400()
{
    DramParams p;
    p.name = "DDR4-2400";
    p.channels = 1;
    p.data_width_bits = 64;
    p.data_rate_mts = 2400;
    p.banks = 16;
    p.burst_length = 8;
    p.row_bytes = 8 * kKiB;
    p.tCL_ns = 14.16;
    p.tRCD_ns = 14.16;
    p.tRP_ns = 14.16;
    p.tRAS_ns = 32.0;
    p.tRFC_ns = 350.0;
    return p;
}

DramParams ddr5_3200()
{
    DramParams p;
    p.name = "DDR5-3200";
    p.channels = 2;
    p.data_width_bits = 32;
    p.data_rate_mts = 3200;
    p.banks = 32;
    p.burst_length = 16;
    p.row_bytes = 4 * kKiB;
    p.tCL_ns = 15.0;
    p.tRCD_ns = 15.0;
    p.tRP_ns = 15.0;
    p.tRAS_ns = 32.0;
    p.tRFC_ns = 295.0;
    return p;
}

DramParams hbm2()
{
    DramParams p;
    p.name = "HBM2";
    p.channels = 2;
    p.data_width_bits = 128;
    p.data_rate_mts = 2000;
    p.banks = 16;
    p.burst_length = 4;
    p.row_bytes = 1 * kKiB;
    p.tCL_ns = 14.0;
    p.tRCD_ns = 14.0;
    p.tRP_ns = 14.0;
    p.tRAS_ns = 33.0;
    p.tRFC_ns = 260.0;
    return p;
}

DramParams gddr5()
{
    DramParams p;
    p.name = "GDDR5";
    p.channels = 2;
    p.data_width_bits = 64;
    p.data_rate_mts = 1750;
    p.banks = 16;
    p.burst_length = 8;
    p.row_bytes = 2 * kKiB;
    p.tCL_ns = 12.0;
    p.tRCD_ns = 14.0;
    p.tRP_ns = 14.0;
    p.tRAS_ns = 32.0;
    p.tRFC_ns = 200.0;
    return p;
}

DramParams gddr6()
{
    DramParams p;
    p.name = "GDDR6";
    p.channels = 2;
    p.data_width_bits = 64;
    p.data_rate_mts = 2000;
    p.banks = 16;
    p.burst_length = 16;
    p.row_bytes = 2 * kKiB;
    p.tCL_ns = 12.0;
    p.tRCD_ns = 14.0;
    p.tRP_ns = 14.0;
    p.tRAS_ns = 32.0;
    p.tRFC_ns = 200.0;
    return p;
}

DramParams lpddr5()
{
    DramParams p;
    p.name = "LPDDR5";
    p.channels = 2;
    p.data_width_bits = 32;
    p.data_rate_mts = 3200;
    p.banks = 16;
    p.burst_length = 16;
    p.row_bytes = 4 * kKiB;
    p.tCL_ns = 18.0;
    p.tRCD_ns = 18.0;
    p.tRP_ns = 21.0;
    p.tRAS_ns = 42.0;
    p.tRFC_ns = 280.0;
    return p;
}

DramParams dram_params_by_name(const std::string& name)
{
    std::string lower(name.size(), '\0');
    std::transform(name.begin(), name.end(), lower.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (lower == "ddr3" || lower == "ddr3-1600") {
        return ddr3_1600();
    }
    if (lower == "ddr4" || lower == "ddr4-2400") {
        return ddr4_2400();
    }
    if (lower == "ddr5" || lower == "ddr5-3200") {
        return ddr5_3200();
    }
    if (lower == "hbm" || lower == "hbm2") {
        return hbm2();
    }
    if (lower == "gddr5") {
        return gddr5();
    }
    if (lower == "gddr6") {
        return gddr6();
    }
    if (lower == "lpddr5") {
        return lpddr5();
    }
    throw ConfigError("unknown DRAM preset: " + name);
}

std::vector<std::string> dram_preset_names()
{
    return {"DDR3-1600", "DDR4-2400", "DDR5-3200", "HBM2",
            "GDDR5",     "GDDR6",     "LPDDR5"};
}

} // namespace accesys::mem
