// Half-open byte address ranges used for fabric routing and memory maps.
#pragma once

#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::mem {

class AddrRange {
  public:
    constexpr AddrRange() = default;

    /// [start, end) — end exclusive.
    constexpr AddrRange(Addr start, Addr end) : start_(start), end_(end)
    {
        if (end < start) {
            throw ConfigError("AddrRange end before start");
        }
    }

    [[nodiscard]] static constexpr AddrRange with_size(Addr start,
                                                       std::uint64_t size)
    {
        return AddrRange(start, start + size);
    }

    [[nodiscard]] constexpr Addr start() const noexcept { return start_; }
    [[nodiscard]] constexpr Addr end() const noexcept { return end_; }
    [[nodiscard]] constexpr std::uint64_t size() const noexcept
    {
        return end_ - start_;
    }
    [[nodiscard]] constexpr bool empty() const noexcept
    {
        return end_ == start_;
    }

    [[nodiscard]] constexpr bool contains(Addr a) const noexcept
    {
        return a >= start_ && a < end_;
    }

    /// True when [a, a+size) lies fully inside this range.
    [[nodiscard]] constexpr bool contains(Addr a,
                                          std::uint64_t size) const noexcept
    {
        return a >= start_ && a + size <= end_;
    }

    [[nodiscard]] constexpr bool overlaps(const AddrRange& o) const noexcept
    {
        return start_ < o.end_ && o.start_ < end_;
    }

    /// Offset of `a` from the range base.
    [[nodiscard]] constexpr std::uint64_t offset(Addr a) const
    {
        if (!contains(a)) {
            throw SimError("address outside range");
        }
        return a - start_;
    }

    [[nodiscard]] std::string describe() const;

    friend constexpr bool operator==(const AddrRange& a,
                                     const AddrRange& b) noexcept
    {
        return a.start_ == b.start_ && a.end_ == b.end_;
    }

  private:
    Addr start_ = 0;
    Addr end_ = 0;
};

/// Validates that `ranges` are pairwise non-overlapping (throws ConfigError).
void check_disjoint(const std::vector<AddrRange>& ranges);

} // namespace accesys::mem
