#include "mem/mem_ctrl.hh"

#include <algorithm>

#include "sim/serialize.hh"
#include "sim/simd.hh"

namespace accesys::mem {

namespace {

/// Picoseconds one byte occupies a channel of `gb_per_s` gigaBYTES per
/// second. Note the unit: despite the "gbps" spelling used by
/// DramParams::peak_gbps() and SimpleMemParams::bandwidth_gbps, both report
/// GB/s (bytes, not bits) — one byte at X GB/s takes 1000/X ps. Callers
/// must reject a zero bandwidth before dividing.
double ps_per_byte(double gb_per_s)
{
    return 1000.0 / gb_per_s;
}

} // namespace

MemCtrl::MemCtrl(Simulator& sim, std::string name,
                 const MemCtrlParams& params, AddrRange range)
    : SimObject(sim, std::move(name)),
      params_(params),
      range_(range),
      dram_(params.dram),
      port_(this->name() + ".port", *this),
      resp_q_(sim, this->name() + ".resp_q",
              [](void* s, PacketPtr& pkt) {
                  return static_cast<MemCtrl*>(s)->port_.send_resp(pkt);
              },
              this),
      issue_event_(this->name() + ".issue", nullptr)
{
    issue_event_.set_raw_callback(
        [](void* s) { static_cast<MemCtrl*>(s)->issue_next(); }, this);
    port_.set_fast_path(
        [](void* s, PacketPtr& pkt) {
            return static_cast<MemCtrl*>(s)->recv_req(pkt);
        },
        [](void* s) { static_cast<MemCtrl*>(s)->retry_resp(); }, this);
    require_cfg(params_.read_queue_capacity > 0 &&
                    params_.write_queue_capacity > 0,
                this->name(), ": zero queue capacity");
    require_cfg(dram_.params().peak_gbps() > 0, this->name(),
                ": DRAM peak bandwidth must be nonzero");
    frontend_ticks_ = ticks_from_ns(params_.frontend_latency_ns);
    backend_ticks_ = ticks_from_ns(params_.backend_latency_ns);
    dram_ps_per_byte_ = ps_per_byte(dram_.params().peak_gbps());
}

double MemCtrl::row_hit_rate() const
{
    const auto total = dram_.row_hits() + dram_.row_misses();
    return total == 0
               ? 0.0
               : static_cast<double>(dram_.row_hits()) /
                     static_cast<double>(total);
}

bool MemCtrl::recv_req(PacketPtr& pkt)
{
    if (!range_.contains(pkt->addr(), pkt->size())) {
        panic(name(), ": request outside range: ", pkt->describe());
    }

    if (pkt->is_read()) {
        if (read_q_full()) {
            ++retries_;
            blocked_upstream_ = true;
            return false;
        }
        ++n_reads_;
        pkt->set_created_at(now());
        // Packed FR-FCFS key computed once at admission; the issue-side
        // window scan then never decodes addresses.
        read_keys_.push_back(dram_.packed_key(pkt->addr()));
        read_q_.push_back(std::move(pkt));
    } else {
        if (write_q_full()) {
            ++retries_;
            blocked_upstream_ = true;
            return false;
        }
        ++n_writes_;
        write_q_.push_back(WriteJob{pkt->addr(), pkt->size()});
        // Writes are acknowledged at admission (posted semantics at the
        // controller); the job object keeps consuming DRAM bandwidth.
        if (!pkt->flags.posted) {
            pkt->make_response();
            resp_q_.push(std::move(pkt),
                         now() + frontend_ticks_);
        }
    }
    schedule_issue();
    return true;
}

void MemCtrl::schedule_issue()
{
    if (read_q_.empty() && write_q_.empty()) {
        return;
    }
    const Tick when = std::max(now(), issue_free_);
    if (!issue_event_.scheduled()) {
        eq().schedule_express(issue_event_, when);
    } else if (issue_event_.when() > when) {
        reschedule(issue_event_, when);
    }
}

void MemCtrl::service_dram(Addr addr, std::uint32_t size, bool is_write,
                           Tick& completion)
{
    const std::uint32_t atom = dram_.params().burst_bytes();
    const Addr first = align_down(addr, atom);
    const Addr last = align_up(addr + size, atom);
    const Tick start = std::max(now(), issue_free_);
    // One row-streaming walk over all consecutive bursts (bit-equivalent
    // to the per-burst access() loop this replaces).
    const auto acc =
        dram_.access_run(first, (last - first) / atom, is_write, start);
    completion = std::max(completion, acc.data_ready);
    // Pace the next issue so the queue drains at (at most) peak bandwidth.
    const auto bytes = static_cast<double>(last - first);
    issue_free_ = start + static_cast<Tick>(bytes * dram_ps_per_byte_);
}

void MemCtrl::issue_next()
{
    // Hysteresis-based write drain: start when the write queue is filling,
    // keep going until it is nearly empty or reads are starved.
    const auto high = static_cast<std::size_t>(
        params_.write_drain_threshold *
        static_cast<double>(params_.write_queue_capacity));
    if (write_q_.size() >= high || read_q_.empty()) {
        draining_writes_ = !write_q_.empty();
    } else if (write_q_.size() <= params_.write_queue_capacity / 8) {
        draining_writes_ = false;
    }

    if (draining_writes_ && !write_q_.empty()) {
        const WriteJob job = write_q_.front();
        write_q_.pop_front();
        Tick completion = 0;
        service_dram(job.addr, job.size, true, completion);
        bytes_written_ += job.size;
    } else if (!read_q_.empty()) {
        // FR-FCFS: prefer a row-hitting read within the window, else oldest.
        // Each queued read's packed (channel,bank,row) key (stamped at
        // admission) is compared against its bank's open-row key — first
        // match in age order wins, exactly like the decode-based probe loop
        // this replaces, but at one 64-bit compare per entry, four entries
        // per SIMD step.
        std::size_t pick = 0;
        bool window_hit = false;
        const std::size_t window =
            std::min(params_.frfcfs_window, read_q_.size());
        const std::uint64_t* open = dram_.open_keys();
        const std::uint64_t smask = dram_.slot_mask();
        std::size_t i = 0;
#ifdef ACCESYS_HAVE_VEC_EXT
        for (; i + 4 <= window; i += 4) {
            std::uint64_t keys[4];
            std::uint64_t opens[4];
            for (unsigned j = 0; j < 4; ++j) {
                keys[j] = read_keys_[i + j];
                opens[j] = open[keys[j] & smask];
            }
            const unsigned hits = simd::match4(keys, opens);
            if (hits != 0) {
                pick = i + static_cast<unsigned>(__builtin_ctz(hits));
                window_hit = true;
                break;
            }
        }
#endif
        if (!window_hit) {
            for (; i < window; ++i) {
                const std::uint64_t key = read_keys_[i];
                if (open[key & smask] == key) {
                    pick = i;
                    window_hit = true;
                    break;
                }
            }
        }
        if (window_hit) {
            ++frfcfs_window_hits_;
        } else {
            ++frfcfs_oldest_picks_;
        }
        PacketPtr pkt = read_q_.take_at(pick);
        (void)read_keys_.take_at(pick);

        Tick completion = 0;
        service_dram(pkt->addr(), pkt->size(), false, completion);
        bytes_read_ += pkt->size();

        const Tick done =
            completion + backend_ticks_;
        read_latency_ns_.sample(ticks_to_ns(done - pkt->created_at()));
        pkt->make_response();
        resp_q_.push(std::move(pkt), done);
    }

    maybe_unblock();
    schedule_issue();
}

void MemCtrl::maybe_unblock()
{
    if (blocked_upstream_ && !read_q_full() && !write_q_full()) {
        blocked_upstream_ = false;
        port_.send_retry_req();
    }
}

SimpleMem::SimpleMem(Simulator& sim, std::string name,
                     const SimpleMemParams& params, AddrRange range)
    : SimObject(sim, std::move(name)),
      params_(params),
      range_(range),
      port_(this->name() + ".port", *this),
      resp_q_(sim, this->name() + ".resp_q",
              [](void* s, PacketPtr& pkt) {
                  auto* self = static_cast<SimpleMem*>(s);
                  const bool ok = self->port_.send_resp(pkt);
                  if (ok) {
                      --self->in_flight_;
                      if (self->blocked_upstream_) {
                          self->blocked_upstream_ = false;
                          self->port_.send_retry_req();
                      }
                  }
                  return ok;
              },
              this)
{
    port_.set_fast_path(
        [](void* s, PacketPtr& pkt) {
            return static_cast<SimpleMem*>(s)->recv_req(pkt);
        },
        [](void* s) { static_cast<SimpleMem*>(s)->retry_resp(); }, this);
    require_cfg(params_.bandwidth_gbps > 0, this->name(), ": zero bandwidth");
    latency_ticks_ = ticks_from_ns(params_.latency_ns);
    ps_per_byte_ = ps_per_byte(params_.bandwidth_gbps);
}

bool SimpleMem::recv_req(PacketPtr& pkt)
{
    if (!range_.contains(pkt->addr(), pkt->size())) {
        panic(name(), ": request outside range: ", pkt->describe());
    }
    if (in_flight_ >= params_.queue_capacity) {
        blocked_upstream_ = true;
        return false;
    }

    // Serialise on the memory's internal bus, then add the access latency.
    const Tick ser = static_cast<Tick>(static_cast<double>(pkt->size()) *
                                       ps_per_byte_);
    bus_free_ = std::max(bus_free_, now()) + ser;
    const Tick done = bus_free_ + latency_ticks_;

    bytes_ += pkt->size();
    if (pkt->is_read()) {
        ++n_reads_;
    } else {
        ++n_writes_;
    }

    const bool posted = pkt->flags.posted && pkt->is_write();
    if (!posted) {
        ++in_flight_;
        pkt->make_response();
        resp_q_.push(std::move(pkt), done);
    }
    return true;
}

void SimpleMem::retry_resp()
{
    resp_q_.retry();
}

void MemCtrl::serialize(Ckpt& ar)
{
    ar.io(issue_free_, draining_writes_, blocked_upstream_);
    std::uint64_t nr = read_q_.size();
    std::uint64_t nw = write_q_.size();
    ar.io(nr, nw);
    if (ar.saving()) {
        for (std::size_t i = 0; i < nr; ++i) {
            ckpt_packet(ar, read_q_[i]);
            ar.io(read_keys_[i]);
        }
        for (std::size_t i = 0; i < nw; ++i) {
            ar.io(write_q_[i]);
        }
    } else {
        read_q_.clear();
        read_keys_.clear();
        write_q_.clear();
        for (std::uint64_t i = 0; i < nr; ++i) {
            PacketPtr pkt;
            ckpt_packet(ar, pkt);
            std::uint64_t key = 0;
            ar.io(key);
            read_q_.push_back(std::move(pkt));
            read_keys_.push_back(key);
        }
        for (std::uint64_t i = 0; i < nw; ++i) {
            WriteJob job{};
            ar.io(job);
            write_q_.push_back(job);
        }
    }
    dram_.serialize(ar);
    port_.serialize(ar);
    resp_q_.serialize(ar);
    issue_event_.serialize(ar, eq());
}

void MemCtrl::report_occupancy(std::string& out) const
{
    if (read_q_.empty() && write_q_.empty() && resp_q_.empty() &&
        !blocked_upstream_) {
        return;
    }
    out += "  " + name() + ": read_q=" + std::to_string(read_q_.size()) +
           ", write_q=" + std::to_string(write_q_.size()) +
           ", resp_q=" + std::to_string(resp_q_.size()) +
           (resp_q_.blocked() ? " (blocked)" : "") +
           (blocked_upstream_ ? ", upstream refused" : "") + "\n";
}

void SimpleMem::serialize(Ckpt& ar)
{
    std::uint64_t inflight = in_flight_;
    ar.io(bus_free_, inflight, blocked_upstream_);
    in_flight_ = static_cast<std::size_t>(inflight);
    port_.serialize(ar);
    resp_q_.serialize(ar);
}

void SimpleMem::report_occupancy(std::string& out) const
{
    if (in_flight_ == 0 && resp_q_.empty() && !blocked_upstream_) {
        return;
    }
    out += "  " + name() + ": in_flight=" + std::to_string(in_flight_) +
           ", resp_q=" + std::to_string(resp_q_.size()) +
           (blocked_upstream_ ? ", upstream refused" : "") + "\n";
}

} // namespace accesys::mem
