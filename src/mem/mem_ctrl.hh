// Memory controller: bounded read/write queues, FR-FCFS scheduling, and a
// DramTiming backend. Used for host DRAM and (with a different preset) for
// accelerator device-side memory.
//
// Write handling follows the usual controller idiom: writes are acknowledged
// once accepted (their latency is the queue admission) but still occupy the
// DRAM data bus when drained, so they consume real bandwidth.
#pragma once

#include "mem/addr_range.hh"
#include "mem/dram_timing.hh"
#include "mem/port.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::mem {

struct MemCtrlParams {
    DramParams dram;
    std::size_t read_queue_capacity = 32;
    std::size_t write_queue_capacity = 64;
    /// Queue admission / decode pipeline.
    double frontend_latency_ns = 10.0;
    /// Response path back to the fabric.
    double backend_latency_ns = 10.0;
    /// FR-FCFS: how deep into the read queue to look for row hits.
    std::size_t frfcfs_window = 16;
    /// Start draining writes above this fill fraction.
    double write_drain_threshold = 0.75;
};

class MemCtrl final : public SimObject, private Responder {
  public:
    MemCtrl(Simulator& sim, std::string name, const MemCtrlParams& params,
            AddrRange range);

    /// Fabric-facing port (bind an upstream RequestPort to it).
    [[nodiscard]] ResponsePort& port() noexcept { return port_; }
    [[nodiscard]] const AddrRange& range() const noexcept { return range_; }
    [[nodiscard]] const DramParams& dram_params() const noexcept
    {
        return dram_.params();
    }

    /// Row-hit fraction over all bursts so far (test/diagnostic hook).
    [[nodiscard]] double row_hit_rate() const;

    /// Checkpoint/restore queues, pacing horizons and DRAM bank state.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    // Responder interface.
    bool recv_req(PacketPtr& pkt) override;
    void retry_resp() override { resp_q_.retry(); }

    struct WriteJob {
        Addr addr;
        std::uint32_t size;
    };

    void schedule_issue();
    void issue_next();
    void service_dram(Addr addr, std::uint32_t size, bool is_write,
                      Tick& completion);
    void maybe_unblock();
    [[nodiscard]] bool read_q_full() const
    {
        return read_q_.size() >= params_.read_queue_capacity;
    }
    [[nodiscard]] bool write_q_full() const
    {
        return write_q_.size() >= params_.write_queue_capacity;
    }

    MemCtrlParams params_;
    Tick frontend_ticks_ = 0;
    Tick backend_ticks_ = 0;
    double dram_ps_per_byte_ = 0.0; ///< issue pacing at peak bandwidth
    AddrRange range_;
    DramTiming dram_;
    ResponsePort port_;
    PacketQueue resp_q_;
    Event issue_event_;

    RingBuffer<PacketPtr> read_q_;
    /// Packed (channel,bank,row) key per queued read, parallel to read_q_
    /// (same admission order, same take_at shifts). The FR-FCFS window scan
    /// compares these against DramTiming's open-row keys — one 64-bit
    /// compare per entry instead of a full address decode.
    RingBuffer<std::uint64_t> read_keys_;
    RingBuffer<WriteJob> write_q_;
    Tick issue_free_ = 0;  ///< aggregate issue pacing (tracks peak bandwidth)
    bool draining_writes_ = false;
    bool blocked_upstream_ = false;

    stats::Scalar n_reads_{stat_group(), "reads", "read requests accepted"};
    stats::Scalar n_writes_{stat_group(), "writes",
                            "write requests accepted"};
    stats::Scalar bytes_read_{stat_group(), "bytes_read",
                              "bytes returned to the fabric"};
    stats::Scalar bytes_written_{stat_group(), "bytes_written",
                                 "bytes drained to DRAM"};
    stats::Average read_latency_ns_{
        stat_group(), "read_latency_ns",
        "accept-to-data latency of reads in nanoseconds"};
    stats::Scalar retries_{stat_group(), "retries",
                           "requests refused due to full queues"};
    stats::Scalar frfcfs_window_hits_{
        stat_group(), "frfcfs_window_hits",
        "reads issued on an open-row hit within the window (the hit may be "
        "the oldest entry itself)"};
    stats::Scalar frfcfs_oldest_picks_{
        stat_group(), "frfcfs_oldest_picks",
        "reads issued oldest-first (no row hit in the window)"};
    stats::ValueFn row_hit_rate_{stat_group(), "row_hit_rate",
                                 "row-buffer hit fraction",
                                 [this] { return row_hit_rate(); }};
};

/// Fixed-latency / fixed-bandwidth memory (Fig. 6 sweeps, unit tests).
struct SimpleMemParams {
    double latency_ns = 30.0;
    double bandwidth_gbps = 25.6;
    std::size_t queue_capacity = 64;
};

class SimpleMem final : public SimObject, private Responder {
  public:
    SimpleMem(Simulator& sim, std::string name, const SimpleMemParams& params,
              AddrRange range);

    [[nodiscard]] ResponsePort& port() noexcept { return port_; }
    [[nodiscard]] const AddrRange& range() const noexcept { return range_; }

    /// Checkpoint/restore the response queue and bus/occupancy state.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    bool recv_req(PacketPtr& pkt) override;
    void retry_resp() override;

    SimpleMemParams params_;
    Tick latency_ticks_ = 0;
    double ps_per_byte_ = 0.0;
    AddrRange range_;
    ResponsePort port_;
    PacketQueue resp_q_;
    Tick bus_free_ = 0;
    std::size_t in_flight_ = 0;
    bool blocked_upstream_ = false;

    stats::Scalar n_reads_{stat_group(), "reads", "read requests"};
    stats::Scalar n_writes_{stat_group(), "writes", "write requests"};
    stats::Scalar bytes_{stat_group(), "bytes", "total bytes transferred"};
};

} // namespace accesys::mem
