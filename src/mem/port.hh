// Timing ports with a gem5-style retry protocol, plus a queued-egress helper.
//
// Protocol summary:
//   * A requestor owns a RequestPort; a responder owns a ResponsePort; the
//     two are bound 1:1.
//   * RequestPort::send_req(pkt) delivers to the responder. A `false` return
//     means "busy": the caller keeps ownership and must wait for
//     Requestor::retry_req() before re-sending. At most one blocked request
//     per port.
//   * Responses flow the other way with the symmetric rules.
//   * `PacketQueue` implements the common egress pattern: schedule a packet
//     to leave at a future tick, retry automatically on backpressure.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "mem/packet.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::mem {

/// Interface a component implements to own a RequestPort.
class Requestor {
  public:
    virtual ~Requestor() = default;

    /// A response arrived. Return false to backpressure (peer will retry).
    virtual bool recv_resp(PacketPtr& pkt) = 0;

    /// The responder unblocked; re-send the deferred request now.
    virtual void retry_req() = 0;
};

/// Interface a component implements to own a ResponsePort.
class Responder {
  public:
    virtual ~Responder() = default;

    /// A request arrived. Return false to backpressure (peer will retry).
    virtual bool recv_req(PacketPtr& pkt) = 0;

    /// The requestor unblocked; re-send the deferred response now.
    virtual void retry_resp() = 0;
};

class ResponsePort;

class RequestPort {
  public:
    RequestPort(std::string name, Requestor& owner)
        : name_(std::move(name)), owner_(&owner)
    {
    }

    void bind(ResponsePort& peer);
    [[nodiscard]] bool bound() const noexcept { return peer_ != nullptr; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Send a request to the bound responder. On `false` the caller keeps
    /// `pkt` and must wait for retry_req().
    [[nodiscard]] bool send_req(PacketPtr& pkt);

    /// Notify the responder that this side can accept responses again.
    void send_retry_resp();

  private:
    friend class ResponsePort;
    std::string name_;
    Requestor* owner_;
    ResponsePort* peer_ = nullptr;
    bool want_retry_ = false; ///< peer owes us a request retry
};

class ResponsePort {
  public:
    ResponsePort(std::string name, Responder& owner)
        : name_(std::move(name)), owner_(&owner)
    {
    }

    void bind(RequestPort& peer) { peer.bind(*this); }
    [[nodiscard]] bool bound() const noexcept { return peer_ != nullptr; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Send a response to the bound requestor. On `false` the caller keeps
    /// `pkt` and must wait for retry_resp().
    [[nodiscard]] bool send_resp(PacketPtr& pkt);

    /// Notify the requestor that this side can accept requests again.
    void send_retry_req();

  private:
    friend class RequestPort;
    std::string name_;
    Responder* owner_;
    RequestPort* peer_ = nullptr;
    bool want_retry_ = false; ///< peer owes us a response retry
};

/// Deferred-egress queue: packets become sendable at a scheduled tick and are
/// pushed out in order, transparently honouring peer backpressure.
///
/// The queue is transport-agnostic: the owner provides the actual send
/// functor (usually wrapping RequestPort::send_req or
/// ResponsePort::send_resp) and arranges for `retry()` to be called from the
/// matching retry hook.
class PacketQueue {
  public:
    using SendFn = std::function<bool(PacketPtr&)>;

    PacketQueue(Simulator& sim, std::string name, SendFn send)
        : sim_(&sim),
          send_(std::move(send)),
          send_event_(name + ".send", nullptr)
    {
        send_event_.set_raw_callback(
            [](void* self) { static_cast<PacketQueue*>(self)->try_send(); },
            this);
    }

    /// Queue `pkt` to be sent no earlier than `ready` (absolute tick).
    void push(PacketPtr pkt, Tick ready)
    {
        q_.push_back(Entry{std::move(pkt), ready});
        if (!blocked_) {
            arm();
        }
    }

    /// Queue `pkt` for immediate send.
    void push_now(PacketPtr pkt) { push(std::move(pkt), sim_->now()); }

    /// Peer signalled readiness: resume sending.
    void retry()
    {
        blocked_ = false;
        try_send();
    }

    /// Invoked after each packet leaves the queue (used by bounded owners to
    /// wake requestors they previously refused).
    void set_drain_hook(std::function<void()> hook)
    {
        drain_hook_ = std::move(hook);
    }

    [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
    [[nodiscard]] bool blocked() const noexcept { return blocked_; }

    /// Tick at which the head entry becomes sendable (kMaxTick when empty).
    [[nodiscard]] Tick head_ready() const noexcept
    {
        return q_.empty() ? kMaxTick : q_.front().ready;
    }

  private:
    struct Entry {
        PacketPtr pkt;
        Tick ready;
    };

    void arm()
    {
        // While blocked, progress comes from retry(), not from the event.
        if (q_.empty() || blocked_) {
            return;
        }
        const Tick when = std::max(q_.front().ready, sim_->now());
        if (!send_event_.scheduled()) {
            sim_->queue().schedule(send_event_, when);
        } else if (send_event_.when() > when) {
            sim_->queue().reschedule(send_event_, when);
        }
    }

    void try_send()
    {
        bool sent_any = false;
        while (!q_.empty() && !blocked_ && q_.front().ready <= sim_->now()) {
            PacketPtr& pkt = q_.front().pkt;
            if (!send_(pkt)) {
                blocked_ = true;
                break;
            }
            q_.pop_front();
            sent_any = true;
        }
        arm();
        if (sent_any && drain_hook_) {
            drain_hook_();
        }
    }

    // try_send()'s working set first; the Event (large: name + callback)
    // sits behind it.
    Simulator* sim_;
    RingBuffer<Entry> q_;
    bool blocked_ = false;
    SendFn send_;
    std::function<void()> drain_hook_;
    Event send_event_;
};

} // namespace accesys::mem
