// Timing ports with a gem5-style retry protocol, plus a queued-egress helper.
//
// Protocol summary:
//   * A requestor owns a RequestPort; a responder owns a ResponsePort; the
//     two are bound 1:1.
//   * RequestPort::send_req(pkt) delivers to the responder. A `false` return
//     means "busy": the caller keeps ownership and must wait for
//     Requestor::retry_req() before re-sending. At most one blocked request
//     per port.
//   * Responses flow the other way with the symmetric rules.
//   * `PacketQueue` implements the common egress pattern: schedule a packet
//     to leave at a future tick, retry automatically on backpressure.
//
// Dispatch structure: the Requestor/Responder interfaces exist for wiring
// and documentation, but steady-state delivery does not go through their
// vtables. Each port carries a raw `fn(ctx, pkt)` binding (the same trick
// Event::set_raw_callback uses); it defaults to a shim that makes the
// virtual call, and owners devirtualize it in their constructors via
// set_fast_path() with lambdas that call their concrete handlers directly.
// PacketQueue's send functor and drain hook are raw fn/ctx pairs for the
// same reason (no std::function indirection per forwarded packet).
#pragma once

#include <algorithm>
#include <string>
#include <utility>

#include "mem/packet.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::mem {

/// Interface a component implements to own a RequestPort.
class Requestor {
  public:
    virtual ~Requestor() = default;

    /// A response arrived. Return false to backpressure (peer will retry).
    virtual bool recv_resp(PacketPtr& pkt) = 0;

    /// The responder unblocked; re-send the deferred request now.
    virtual void retry_req() = 0;
};

/// Interface a component implements to own a ResponsePort.
class Responder {
  public:
    virtual ~Responder() = default;

    /// A request arrived. Return false to backpressure (peer will retry).
    virtual bool recv_req(PacketPtr& pkt) = 0;

    /// The requestor unblocked; re-send the deferred response now.
    virtual void retry_resp() = 0;
};

class ResponsePort;

class RequestPort {
  public:
    using RecvFn = bool (*)(void*, PacketPtr&);
    using RetryFn = void (*)(void*);

    RequestPort(std::string name, Requestor& owner) : name_(std::move(name))
    {
        // Default binding: one indirect call into the virtual interface.
        ctx_ = static_cast<void*>(&owner);
        recv_resp_ = [](void* o, PacketPtr& p) {
            return static_cast<Requestor*>(o)->recv_resp(p);
        };
        retry_req_ = [](void* o) { static_cast<Requestor*>(o)->retry_req(); };
    }

    /// Devirtualize steady-state delivery: rebind response/retry dispatch
    /// to raw fn(ctx) pairs calling the owner's concrete handlers. Owners
    /// call this from their constructors (where private handlers are in
    /// scope); unbound ports keep the virtual-shim default.
    void set_fast_path(RecvFn recv_resp, RetryFn retry_req,
                      void* ctx) noexcept
    {
        recv_resp_ = recv_resp;
        retry_req_ = retry_req;
        ctx_ = ctx;
    }

    void bind(ResponsePort& peer);
    [[nodiscard]] bool bound() const noexcept { return peer_ != nullptr; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Checkpoint/restore the retry obligation (the only dynamic state a
    /// port holds; owners call this from their serialize()).
    void serialize(Ckpt& ar);

    /// Send a request to the bound responder. On `false` the caller keeps
    /// `pkt` and must wait for retry_req().
    [[nodiscard]] bool send_req(PacketPtr& pkt);

    /// Notify the responder that this side can accept responses again.
    void send_retry_resp();

  private:
    friend class ResponsePort;
    std::string name_;
    RecvFn recv_resp_;  ///< delivers responses to this port's owner
    RetryFn retry_req_; ///< wakes this port's owner after backpressure
    void* ctx_;
    ResponsePort* peer_ = nullptr;
    bool want_retry_ = false; ///< peer owes us a request retry
};

class ResponsePort {
  public:
    using RecvFn = RequestPort::RecvFn;
    using RetryFn = RequestPort::RetryFn;

    ResponsePort(std::string name, Responder& owner) : name_(std::move(name))
    {
        ctx_ = static_cast<void*>(&owner);
        recv_req_ = [](void* o, PacketPtr& p) {
            return static_cast<Responder*>(o)->recv_req(p);
        };
        retry_resp_ = [](void* o) {
            static_cast<Responder*>(o)->retry_resp();
        };
    }

    /// See RequestPort::set_fast_path (symmetric: request/retry-resp side).
    void set_fast_path(RecvFn recv_req, RetryFn retry_resp,
                      void* ctx) noexcept
    {
        recv_req_ = recv_req;
        retry_resp_ = retry_resp;
        ctx_ = ctx;
    }

    void bind(RequestPort& peer) { peer.bind(*this); }
    [[nodiscard]] bool bound() const noexcept { return peer_ != nullptr; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Checkpoint/restore the retry obligation (the only dynamic state a
    /// port holds; owners call this from their serialize()).
    void serialize(Ckpt& ar);

    /// Send a response to the bound requestor. On `false` the caller keeps
    /// `pkt` and must wait for retry_resp().
    [[nodiscard]] bool send_resp(PacketPtr& pkt);

    /// Notify the requestor that this side can accept requests again.
    void send_retry_req();

  private:
    friend class RequestPort;
    std::string name_;
    RecvFn recv_req_;    ///< delivers requests to this port's owner
    RetryFn retry_resp_; ///< wakes this port's owner after backpressure
    void* ctx_;
    RequestPort* peer_ = nullptr;
    bool want_retry_ = false; ///< peer owes us a response retry
};

inline bool RequestPort::send_req(PacketPtr& pkt)
{
    ensure(peer_ != nullptr, "unbound request port: ", name_);
    ensure(pkt != nullptr && pkt->is_request(),
           "send_req needs a request packet on ", name_);
    if (peer_->recv_req_(peer_->ctx_, pkt)) {
        return true;
    }
    peer_->want_retry_ = true;
    return false;
}

inline void RequestPort::send_retry_resp()
{
    ensure(peer_ != nullptr, "unbound request port: ", name_);
    if (want_retry_) {
        want_retry_ = false;
        peer_->retry_resp_(peer_->ctx_);
    }
}

inline bool ResponsePort::send_resp(PacketPtr& pkt)
{
    ensure(peer_ != nullptr, "unbound response port: ", name_);
    ensure(pkt != nullptr && pkt->is_response(),
           "send_resp needs a response packet on ", name_);
    if (peer_->recv_resp_(peer_->ctx_, pkt)) {
        return true;
    }
    peer_->want_retry_ = true;
    return false;
}

inline void ResponsePort::send_retry_req()
{
    ensure(peer_ != nullptr, "unbound response port: ", name_);
    if (want_retry_) {
        want_retry_ = false;
        peer_->retry_req_(peer_->ctx_);
    }
}

/// Deferred-egress queue: packets become sendable at a scheduled tick and are
/// pushed out in order, transparently honouring peer backpressure.
///
/// The queue is transport-agnostic: the owner provides the actual send
/// functor (usually wrapping RequestPort::send_req or
/// ResponsePort::send_resp) as a raw fn/ctx pair and arranges for `retry()`
/// to be called from the matching retry hook.
class PacketQueue {
  public:
    using SendFn = bool (*)(void*, PacketPtr&);
    using HookFn = void (*)(void*);

    PacketQueue(Simulator& sim, std::string name, SendFn send, void* send_ctx)
        : eq_(&sim.current_queue()),
          send_(send),
          send_ctx_(send_ctx),
          send_event_(name + ".send", nullptr)
    {
        send_event_.set_raw_callback(
            [](void* self) { static_cast<PacketQueue*>(self)->try_send(); },
            this);
        fuse_ = eq_->batching_enabled();
    }

    /// Queue `pkt` to be sent no earlier than `ready` (absolute tick).
    ///
    /// Same-resolved-tick fusion: when the packet is already sendable, the
    /// queue is idle, and nothing else is pending at the current tick, the
    /// send event this push would schedule is guaranteed to be the very
    /// next dispatch — so the hand-off happens synchronously and the
    /// intermediate self-event is skipped entirely (disabled together with
    /// batch dispatch by ACCESYS_NO_BATCH; results are identical by
    /// contract).
    void push(PacketPtr pkt, Tick ready)
    {
        // Guard ordering matters: most pushes carry a future ready tick, so
        // the tick compare disqualifies first; the queue-state flags are
        // one cache line; tick_quiescent (a queue probe) runs last.
        const Tick now = eq_->now();
        if (ready <= now && q_.empty() && !blocked_ && fuse_ &&
            !in_send_ && !send_event_.scheduled() &&
            eq_->tick_quiescent()) {
            in_send_ = true;
            const bool ok = send_(send_ctx_, pkt);
            in_send_ = false;
            if (ok) {
                if (drain_hook_ != nullptr) {
                    drain_hook_(drain_ctx_);
                }
                return;
            }
            // Refused: same as a try_send head refusal — hold the packet,
            // wait for the peer's retry().
            blocked_ = true;
            q_.push_back(Entry{std::move(pkt), ready});
            return;
        }
        q_.push_back(Entry{std::move(pkt), ready});
        if (!blocked_) {
            // Inline arm(): the queue cannot be empty after the push, and
            // egress is FIFO — the wakeup tracks the *head's* ready tick
            // (an out-of-order earlier `ready` must not wake the queue
            // before the head can actually leave). Hop sends go through
            // the express lane: quiescent memory-hierarchy chains
            // trampoline hop-to-hop without touching the event heap.
            const Tick head_ready = q_.front().ready;
            const Tick when = head_ready > now ? head_ready : now;
            if (!send_event_.scheduled()) {
                eq_->schedule_express(send_event_, when);
            } else if (send_event_.when() > when) {
                eq_->reschedule(send_event_, when);
            }
        }
    }

    /// Queue `pkt` for immediate send.
    void push_now(PacketPtr pkt) { push(std::move(pkt), eq_->now()); }

    /// Peer signalled readiness: resume sending.
    void retry()
    {
        blocked_ = false;
        try_send();
    }

    /// Invoked after each packet leaves the queue (used by bounded owners to
    /// wake requestors they previously refused).
    void set_drain_hook(HookFn hook, void* ctx)
    {
        drain_hook_ = hook;
        drain_ctx_ = ctx;
    }

    [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
    [[nodiscard]] bool blocked() const noexcept { return blocked_; }

    /// Checkpoint/restore the queued entries (re-materialized from the
    /// calling thread's pool), the blocked flag and the send event.
    void serialize(Ckpt& ar);

    /// Tick at which the head entry becomes sendable (kMaxTick when empty).
    [[nodiscard]] Tick head_ready() const noexcept
    {
        return q_.empty() ? kMaxTick : q_.front().ready;
    }

  private:
    struct Entry {
        PacketPtr pkt;
        Tick ready;
    };

    void arm()
    {
        // While blocked, progress comes from retry(), not from the event.
        if (q_.empty() || blocked_) {
            return;
        }
        const Tick when = std::max(q_.front().ready, eq_->now());
        if (!send_event_.scheduled()) {
            eq_->schedule_express(send_event_, when);
        } else if (send_event_.when() > when) {
            eq_->reschedule(send_event_, when);
        }
    }

    void try_send()
    {
        bool sent_any = false;
        while (!q_.empty() && !blocked_ && q_.front().ready <= eq_->now()) {
            PacketPtr& pkt = q_.front().pkt;
            if (!send_(send_ctx_, pkt)) {
                blocked_ = true;
                break;
            }
            q_.pop_front();
            sent_any = true;
        }
        arm();
        if (sent_any && drain_hook_ != nullptr) {
            drain_hook_(drain_ctx_);
        }
    }

    // try_send()'s working set first; the Event (large: name + callback)
    // sits behind it. Bound to the constructing domain's queue so owners
    // inside a simulation domain schedule locally.
    EventQueue* eq_;
    RingBuffer<Entry> q_;
    bool blocked_ = false;
    bool fuse_ = true;    ///< same-tick fusion on (mirrors batch dispatch)
    bool in_send_ = false; ///< re-entrancy guard for the fused hand-off
    SendFn send_;
    void* send_ctx_;
    HookFn drain_hook_ = nullptr;
    void* drain_ctx_ = nullptr;
    Event send_event_;
};

} // namespace accesys::mem
