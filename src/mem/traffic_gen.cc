#include "mem/traffic_gen.hh"

#include "sim/serialize.hh"

namespace accesys::mem {

void TrafficGenParams::validate() const
{
    require_cfg(req_bytes > 0 && total_bytes >= req_bytes,
                "traffic gen needs at least one request");
    require_cfg(working_set >= req_bytes, "working set too small");
    require_cfg(window >= 1, "traffic gen window must be >= 1");
    require_cfg(write_fraction >= 0.0 && write_fraction <= 1.0,
                "write fraction must be in [0,1]");
}

TrafficGen::TrafficGen(Simulator& sim, std::string name,
                       const TrafficGenParams& params)
    : SimObject(sim, std::move(name)),
      params_(params),
      port_(this->name() + ".port", *this),
      rng_(params.seed)
{
    params_.validate();
    port_.set_fast_path(
        [](void* s, PacketPtr& pkt) {
            return static_cast<TrafficGen*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<TrafficGen*>(s)->retry_req(); }, this);
}

void TrafficGen::start(std::function<void()> on_done)
{
    on_done_ = std::move(on_done);
    start_tick_ = now();
    issued_ = completed_ = acked_bytes_ = 0;
    in_flight_ = 0;
    done_ = false;
    pump();
}

Addr TrafficGen::next_addr()
{
    if (params_.random_addresses) {
        const std::uint64_t slots = params_.working_set / params_.req_bytes;
        return params_.base + rng_.below(slots) * params_.req_bytes;
    }
    return params_.base + issued_ % params_.working_set;
}

void TrafficGen::pump()
{
    while (!done_ && issued_ < params_.total_bytes && !blocked_ &&
           in_flight_ < params_.window) {
        const Addr addr = next_addr();
        const bool write = rng_.chance(params_.write_fraction);
        PacketPtr pkt = write ? packet_pool().make_write(addr, params_.req_bytes)
                              : packet_pool().make_read(addr, params_.req_bytes);
        pkt->set_created_at(now());
        if (!port_.send_req(pkt)) {
            blocked_ = true;
            return;
        }
        if (write) {
            ++n_writes_;
        } else {
            ++n_reads_;
        }
        issued_ += params_.req_bytes;
        ++in_flight_;
    }
    if (issued_ >= params_.total_bytes && in_flight_ == 0 && !done_) {
        finish();
    }
}

bool TrafficGen::recv_resp(PacketPtr& pkt)
{
    if (pkt->cmd() == MemCmd::read_resp) {
        latency_ns_.sample(ticks_to_ns(now() - pkt->created_at()));
    }
    acked_bytes_ += pkt->size();
    pkt.reset();
    ensure(in_flight_ > 0, name(), ": window underflow");
    --in_flight_;
    ++completed_;
    pump();
    return true;
}

void TrafficGen::finish()
{
    done_ = true;
    end_tick_ = now();
    if (on_done_) {
        on_done_();
    }
}

void TrafficGen::serialize(Ckpt& ar)
{
    rng_.serialize(ar);
    ar.io(issued_, completed_, acked_bytes_, in_flight_, blocked_, done_,
          start_tick_, end_tick_);
}

double TrafficGen::achieved_gbps() const
{
    ensure(done_, "traffic gen still running");
    const double secs = ticks_to_sec(elapsed());
    return secs <= 0.0
               ? 0.0
               : static_cast<double>(params_.total_bytes) / secs / 1e9;
}

} // namespace accesys::mem
