// DRAM technology presets (paper Table III plus companions used in Fig. 5).
//
// Each preset captures the first-order characteristics that differentiate
// memory technologies at system level: channel count, per-channel width,
// data rate, bank count, burst length, row size and core timing parameters.
#pragma once

#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::mem {

struct DramParams {
    std::string name;

    unsigned channels = 1;         ///< independent channels
    unsigned data_width_bits = 64; ///< per channel
    unsigned data_rate_mts = 1600; ///< mega-transfers per second per pin
    unsigned banks = 8;            ///< per channel
    unsigned burst_length = 8;     ///< transfers per burst
    std::uint64_t row_bytes = 8 * kKiB; ///< row-buffer size

    // Core timings.
    double tCL_ns = 13.75;
    double tRCD_ns = 13.75;
    double tRP_ns = 13.75;
    double tRAS_ns = 35.0;
    double tRFC_ns = 260.0;
    double tREFI_ns = 7800.0;
    bool refresh_enabled = true;

    // --- derived ------------------------------------------------------------

    /// Bytes moved by one burst on one channel (the access granularity).
    [[nodiscard]] std::uint32_t burst_bytes() const
    {
        return data_width_bits / 8 * burst_length;
    }

    /// Duration of one burst in ticks.
    [[nodiscard]] Tick burst_ticks() const
    {
        // One transfer every 1e6/data_rate picoseconds.
        return static_cast<Tick>(burst_length * 1e6 /
                                 static_cast<double>(data_rate_mts));
    }

    /// Peak bandwidth of one channel in GB/s.
    [[nodiscard]] double channel_peak_gbps() const
    {
        return data_width_bits / 8.0 * data_rate_mts / 1000.0;
    }

    /// Aggregate peak bandwidth in GB/s (matches paper Table III).
    [[nodiscard]] double peak_gbps() const
    {
        return channel_peak_gbps() * channels;
    }

    [[nodiscard]] Tick tCL() const { return ticks_from_ns(tCL_ns); }
    [[nodiscard]] Tick tRCD() const { return ticks_from_ns(tRCD_ns); }
    [[nodiscard]] Tick tRP() const { return ticks_from_ns(tRP_ns); }
    [[nodiscard]] Tick tRAS() const { return ticks_from_ns(tRAS_ns); }
    [[nodiscard]] Tick tRFC() const { return ticks_from_ns(tRFC_ns); }
    [[nodiscard]] Tick tREFI() const { return ticks_from_ns(tREFI_ns); }

    /// Sanity-check the parameter set; throws ConfigError on nonsense.
    void validate() const;
};

// Presets. Channel/width/rate figures follow paper Table III where the
// technology appears there; companions (DDR3 Table II, GDDR5/LPDDR5 Fig. 5)
// use representative JEDEC-flavoured values.
[[nodiscard]] DramParams ddr3_1600();
[[nodiscard]] DramParams ddr4_2400();
[[nodiscard]] DramParams ddr5_3200();
[[nodiscard]] DramParams hbm2();
[[nodiscard]] DramParams gddr5();
[[nodiscard]] DramParams gddr6();
[[nodiscard]] DramParams lpddr5();

/// Lookup by case-insensitive name ("ddr4", "HBM2", ...).
[[nodiscard]] DramParams dram_params_by_name(const std::string& name);

/// All preset names, for sweeps and help text.
[[nodiscard]] std::vector<std::string> dram_preset_names();

} // namespace accesys::mem
