// Memory-system packets.
//
// A Packet describes one timing transaction (command, address, size). The
// functional data image lives in a global BackingStore that endpoints touch
// when the transaction logically completes (gem5-style timing/functional
// split), so timing packets are payload-free and cheap. Small inline payloads
// are supported for MMIO/config writes.
//
// Responses reuse the request object: `make_response()` flips the command in
// place, preserving the route stack that intermediate fabric components
// (xbars, switches) pushed on the way down.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::mem {

/// Process-wide unique requestor-id allocator; every component that
/// originates packets (CPU, caches, DMA channels, walkers) draws one so
/// responses can be attributed and self-created packets recognised.
[[nodiscard]] std::uint32_t alloc_requestor_id();

enum class MemCmd : std::uint8_t {
    read_req,
    read_resp,
    write_req,
    write_resp,
};

[[nodiscard]] constexpr const char* to_string(MemCmd cmd)
{
    switch (cmd) {
    case MemCmd::read_req: return "ReadReq";
    case MemCmd::read_resp: return "ReadResp";
    case MemCmd::write_req: return "WriteReq";
    case MemCmd::write_resp: return "WriteResp";
    }
    return "?";
}

/// Packet attribute flags.
struct PktFlags {
    /// Bypass all caches on the path (DM access mode, MMIO).
    bool uncacheable = false;
    /// Originates from a device (inbound DMA) rather than a CPU.
    bool from_device = false;
    /// Address is virtual in the device's address space; an SMMU on the
    /// path must translate it before it reaches physical memory.
    bool needs_translation = false;
    /// Posted write: no response expected by the requestor.
    bool posted = false;
};

class Packet;
using PacketPtr = std::unique_ptr<Packet>;

class Packet {
  public:
    Packet(MemCmd cmd, Addr addr, std::uint32_t size)
        : cmd_(cmd), addr_(addr), size_(size)
    {
    }

    [[nodiscard]] static PacketPtr make_read(Addr addr, std::uint32_t size)
    {
        return std::make_unique<Packet>(MemCmd::read_req, addr, size);
    }

    [[nodiscard]] static PacketPtr make_write(Addr addr, std::uint32_t size)
    {
        return std::make_unique<Packet>(MemCmd::write_req, addr, size);
    }

    // --- command -----------------------------------------------------------
    [[nodiscard]] MemCmd cmd() const noexcept { return cmd_; }
    [[nodiscard]] bool is_read() const noexcept
    {
        return cmd_ == MemCmd::read_req || cmd_ == MemCmd::read_resp;
    }
    [[nodiscard]] bool is_write() const noexcept { return !is_read(); }
    [[nodiscard]] bool is_request() const noexcept
    {
        return cmd_ == MemCmd::read_req || cmd_ == MemCmd::write_req;
    }
    [[nodiscard]] bool is_response() const noexcept { return !is_request(); }

    /// Turn this request into its response in place.
    void make_response()
    {
        ensure(is_request(), "make_response on a response packet");
        cmd_ = (cmd_ == MemCmd::read_req) ? MemCmd::read_resp
                                          : MemCmd::write_resp;
    }

    // --- addressing --------------------------------------------------------
    [[nodiscard]] Addr addr() const noexcept { return addr_; }
    void set_addr(Addr a) noexcept { addr_ = a; }
    [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
    [[nodiscard]] Addr end_addr() const noexcept { return addr_ + size_; }

    /// Original (pre-translation) address; valid after an SMMU translated.
    [[nodiscard]] Addr orig_addr() const noexcept { return orig_addr_; }
    void record_translation(Addr new_addr)
    {
        orig_addr_ = addr_;
        addr_ = new_addr;
        flags.needs_translation = false;
    }

    // --- identity / bookkeeping -------------------------------------------
    [[nodiscard]] std::uint32_t requestor() const noexcept
    {
        return requestor_;
    }
    void set_requestor(std::uint32_t id) noexcept { requestor_ = id; }

    [[nodiscard]] std::uint64_t tag() const noexcept { return tag_; }
    void set_tag(std::uint64_t t) noexcept { tag_ = t; }

    /// Translation stream the request belongs to (stamped by the bridge
    /// that admits device traffic, e.g. from the PCIe requester id). An
    /// SMMU uses it to select the per-device translation context; 0 means
    /// "untagged" and maps to the default stream.
    [[nodiscard]] std::uint32_t stream() const noexcept { return stream_; }
    void set_stream(std::uint32_t s) noexcept { stream_ = s; }

    [[nodiscard]] Tick created_at() const noexcept { return created_at_; }
    void set_created_at(Tick t) noexcept { created_at_ = t; }

    PktFlags flags;

    // --- route stack -------------------------------------------------------
    // Fabric components push the ingress-port index when forwarding a
    // request and pop it to steer the response back.
    void push_route(std::uint16_t port) { route_.push_back(port); }

    [[nodiscard]] std::uint16_t pop_route()
    {
        ensure(!route_.empty(), "response route stack underflow");
        const std::uint16_t p = route_.back();
        route_.pop_back();
        return p;
    }

    [[nodiscard]] std::size_t route_depth() const noexcept
    {
        return route_.size();
    }

    // --- optional inline payload (MMIO/config writes) ----------------------
    [[nodiscard]] bool has_payload() const noexcept
    {
        return !payload_.empty();
    }
    [[nodiscard]] const std::vector<std::uint8_t>& payload() const noexcept
    {
        return payload_;
    }
    void set_payload(std::vector<std::uint8_t> bytes)
    {
        payload_ = std::move(bytes);
    }

    template <typename T>
    void set_payload_value(const T& v)
    {
        payload_.resize(sizeof(T));
        std::memcpy(payload_.data(), &v, sizeof(T));
    }

    template <typename T>
    [[nodiscard]] T payload_value() const
    {
        ensure(payload_.size() >= sizeof(T), "payload too small");
        T v;
        std::memcpy(&v, payload_.data(), sizeof(T));
        return v;
    }

    [[nodiscard]] std::string describe() const;

  private:
    MemCmd cmd_;
    Addr addr_;
    std::uint32_t size_;
    Addr orig_addr_ = 0;
    std::uint32_t requestor_ = 0;
    std::uint32_t stream_ = 0;
    std::uint64_t tag_ = 0;
    Tick created_at_ = 0;
    std::vector<std::uint16_t> route_;
    std::vector<std::uint8_t> payload_;
};

} // namespace accesys::mem
