// Memory-system packets and the pool that recycles them.
//
// A Packet describes one timing transaction (command, address, size). The
// functional data image lives in a global BackingStore that endpoints touch
// when the transaction logically completes (gem5-style timing/functional
// split), so timing packets are payload-free and cheap. Small MMIO/config
// payloads (<= kMaxInlinePayload bytes) are carried in an inline buffer and
// the response route stack is a fixed inline array, so a Packet performs no
// heap allocation of its own — ever.
//
// Pooled lifecycle
// ----------------
// Packets are created through a PacketPool (`pool.make_read(addr, size)`;
// the `Packet::make_read` statics forward to the process-wide
// `PacketPool::global()`). `PacketPtr` stays a `std::unique_ptr`, but with a
// pool-aware deleter: when the owner drops it, the packet returns to the
// pool's free list instead of the heap, fully re-initialised on the next
// acquire. Steady-state simulation therefore allocates no packet memory at
// all — `PacketPool::allocs_total()` (heap allocations) stays flat while
// `acquires_total()` keeps counting, which is exactly what the perf harness
// asserts. Pools are not thread-safe (the simulator is single-threaded) and
// must outlive every packet drawn from them; the global pool trivially does.
//
// Responses reuse the request object: `make_response()` flips the command in
// place, preserving the route stack that intermediate fabric components
// (xbars, switches) pushed on the way down.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys {
class Ckpt;
}

namespace accesys::mem {

/// Requestor-id allocator; every component that originates packets (CPU,
/// caches, DMA channels, walkers) draws one so responses can be
/// attributed and self-created packets recognised. Ids are unique within
/// one System and deterministic across System lifetimes: core::System
/// resets the counter before building its topology, so a component's id
/// depends only on construction order. That determinism is load-bearing
/// for checkpoints — Packet::serialize stores requestor ids verbatim, and
/// a restored in-flight packet must still match the id of the component
/// that created it (e.g. a cache's MSHR-fill ownership test).
[[nodiscard]] std::uint32_t alloc_requestor_id();

/// Rewind the requestor-id counter for a fresh System build (see above).
/// Packets never cross System boundaries, so overlapping id spaces
/// between Systems are harmless.
void reset_requestor_ids();

enum class MemCmd : std::uint8_t {
    read_req,
    read_resp,
    write_req,
    write_resp,
};

[[nodiscard]] constexpr const char* to_string(MemCmd cmd)
{
    switch (cmd) {
    case MemCmd::read_req: return "ReadReq";
    case MemCmd::read_resp: return "ReadResp";
    case MemCmd::write_req: return "WriteReq";
    case MemCmd::write_resp: return "WriteResp";
    }
    return "?";
}

/// Packet attribute flags.
struct PktFlags {
    /// Bypass all caches on the path (DM access mode, MMIO).
    bool uncacheable = false;
    /// Originates from a device (inbound DMA) rather than a CPU.
    bool from_device = false;
    /// Address is virtual in the device's address space; an SMMU on the
    /// path must translate it before it reaches physical memory.
    bool needs_translation = false;
    /// Posted write: no response expected by the requestor.
    bool posted = false;
    /// Poisoned data (fault model only): a fault on the path marked the
    /// payload bad; consumers must contain it, never copy it through.
    bool poisoned = false;
};

class Packet;
class PacketPool;

/// Pool-aware deleter: returns pooled packets to their pool, frees the rest.
struct PacketDeleter {
    void operator()(Packet* pkt) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

class Packet {
  public:
    /// Deepest xbar/switch nesting a response can route back through.
    static constexpr std::size_t kMaxRouteDepth = 8;
    /// Largest inline MMIO/config payload (doorbells and registers are 8 B).
    static constexpr std::size_t kMaxInlinePayload = 16;

    Packet(MemCmd cmd, Addr addr, std::uint32_t size)
        : cmd_(cmd), addr_(addr), size_(size)
    {
    }

    /// Pool-backed factories (process-wide pool; see PacketPool below).
    [[nodiscard]] static PacketPtr make_read(Addr addr, std::uint32_t size);
    [[nodiscard]] static PacketPtr make_write(Addr addr, std::uint32_t size);

    // --- command -----------------------------------------------------------
    [[nodiscard]] MemCmd cmd() const noexcept { return cmd_; }
    [[nodiscard]] bool is_read() const noexcept
    {
        return cmd_ == MemCmd::read_req || cmd_ == MemCmd::read_resp;
    }
    [[nodiscard]] bool is_write() const noexcept { return !is_read(); }
    [[nodiscard]] bool is_request() const noexcept
    {
        return cmd_ == MemCmd::read_req || cmd_ == MemCmd::write_req;
    }
    [[nodiscard]] bool is_response() const noexcept { return !is_request(); }

    /// Turn this request into its response in place.
    void make_response()
    {
        ensure(is_request(), "make_response on a response packet");
        cmd_ = (cmd_ == MemCmd::read_req) ? MemCmd::read_resp
                                          : MemCmd::write_resp;
    }

    // --- addressing --------------------------------------------------------
    [[nodiscard]] Addr addr() const noexcept { return addr_; }
    void set_addr(Addr a) noexcept { addr_ = a; }
    [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
    [[nodiscard]] Addr end_addr() const noexcept { return addr_ + size_; }

    /// Original (pre-translation) address; valid after an SMMU translated.
    [[nodiscard]] Addr orig_addr() const noexcept { return orig_addr_; }
    void record_translation(Addr new_addr)
    {
        orig_addr_ = addr_;
        addr_ = new_addr;
        flags.needs_translation = false;
    }

    // --- identity / bookkeeping -------------------------------------------
    [[nodiscard]] std::uint32_t requestor() const noexcept
    {
        return requestor_;
    }
    void set_requestor(std::uint32_t id) noexcept { requestor_ = id; }

    [[nodiscard]] std::uint64_t tag() const noexcept { return tag_; }
    void set_tag(std::uint64_t t) noexcept { tag_ = t; }

    /// Translation stream the request belongs to (stamped by the bridge
    /// that admits device traffic, e.g. from the PCIe requester id). An
    /// SMMU uses it to select the per-device translation context; 0 means
    /// "untagged" and maps to the default stream.
    [[nodiscard]] std::uint32_t stream() const noexcept { return stream_; }
    void set_stream(std::uint32_t s) noexcept { stream_ = s; }

    [[nodiscard]] Tick created_at() const noexcept { return created_at_; }
    void set_created_at(Tick t) noexcept { created_at_ = t; }

    PktFlags flags;

    // --- route stack -------------------------------------------------------
    // Fabric components push the ingress-port index when forwarding a
    // request and pop it to steer the response back. Fixed inline storage:
    // kMaxRouteDepth bounds the fabric nesting depth.
    void push_route(std::uint16_t port)
    {
        ensure(route_depth_ < kMaxRouteDepth,
               "route stack overflow (fabric deeper than kMaxRouteDepth)");
        route_[route_depth_++] = port;
    }

    [[nodiscard]] std::uint16_t pop_route()
    {
        ensure(route_depth_ > 0, "response route stack underflow");
        return route_[--route_depth_];
    }

    [[nodiscard]] std::size_t route_depth() const noexcept
    {
        return route_depth_;
    }

    // --- optional inline payload (MMIO/config writes) ----------------------
    [[nodiscard]] bool has_payload() const noexcept
    {
        return payload_size_ != 0;
    }
    [[nodiscard]] const std::uint8_t* payload_data() const noexcept
    {
        return payload_.data();
    }
    [[nodiscard]] std::uint32_t payload_size() const noexcept
    {
        return payload_size_;
    }
    void set_payload(const void* data, std::size_t bytes)
    {
        ensure(bytes <= kMaxInlinePayload, "packet payload too large (",
               bytes, " > ", kMaxInlinePayload, ")");
        std::memcpy(payload_.data(), data, bytes);
        payload_size_ = static_cast<std::uint8_t>(bytes);
    }

    template <typename T>
    void set_payload_value(const T& v)
    {
        static_assert(sizeof(T) <= kMaxInlinePayload);
        set_payload(&v, sizeof(T));
    }

    template <typename T>
    [[nodiscard]] T payload_value() const
    {
        ensure(payload_size_ >= sizeof(T), "payload too small");
        T v;
        std::memcpy(&v, payload_.data(), sizeof(T));
        return v;
    }

    [[nodiscard]] std::string describe() const;

    /// Checkpoint/restore every field except the owning-pool link (the
    /// materializing pool stamps itself; see ckpt_packet below).
    void serialize(Ckpt& ar);

  private:
    friend class PacketPool;
    friend struct PacketDeleter;

    /// Reset every field for reuse from a pool free list.
    void reinit(MemCmd cmd, Addr addr, std::uint32_t size) noexcept
    {
        cmd_ = cmd;
        addr_ = addr;
        size_ = size;
        orig_addr_ = 0;
        requestor_ = 0;
        stream_ = 0;
        tag_ = 0;
        created_at_ = 0;
        flags = PktFlags{};
        route_depth_ = 0;
        payload_size_ = 0;
    }

    MemCmd cmd_;
    Addr addr_;
    std::uint32_t size_;
    Addr orig_addr_ = 0;
    std::uint32_t requestor_ = 0;
    std::uint32_t stream_ = 0;
    std::uint64_t tag_ = 0;
    Tick created_at_ = 0;
    PacketPool* pool_ = nullptr; ///< owning pool; null = plain heap/stack
    std::uint8_t route_depth_ = 0;
    std::uint8_t payload_size_ = 0;
    std::array<std::uint16_t, kMaxRouteDepth> route_{};
    std::array<std::uint8_t, kMaxInlinePayload> payload_{};
};

/// Free-list arena for Packets. Acquire with the make_* factories; release
/// by dropping the PacketPtr — the deleter recycles into `free_`. The pool
/// must outlive its packets; not thread-safe.
class PacketPool {
  public:
    PacketPool() = default;
    ~PacketPool();
    PacketPool(const PacketPool&) = delete;
    PacketPool& operator=(const PacketPool&) = delete;

    [[nodiscard]] PacketPtr make(MemCmd cmd, Addr addr, std::uint32_t size)
    {
        ++acquires_total_;
        if (free_.empty()) {
            ++allocs_total_;
            lifetime_allocs_.fetch_add(1, std::memory_order_relaxed);
            Packet* p = new Packet(cmd, addr, size);
            p->pool_ = this;
            return PacketPtr(p);
        }
        Packet* p = free_.back();
        free_.pop_back();
        p->reinit(cmd, addr, size);
        return PacketPtr(p);
    }

    [[nodiscard]] PacketPtr make_read(Addr addr, std::uint32_t size)
    {
        return make(MemCmd::read_req, addr, size);
    }
    [[nodiscard]] PacketPtr make_write(Addr addr, std::uint32_t size)
    {
        return make(MemCmd::write_req, addr, size);
    }

    /// Pre-populate the free list with `n` packets.
    void reserve(std::size_t n);

    /// Checkpoint/restore the pool counters. Runs after the components
    /// re-materialized their in-flight packets, so the saved values
    /// overwrite the acquires the restore itself performed and the
    /// counter stream continues as if never interrupted.
    void serialize_counters(Ckpt& ar);

    /// Heap allocations performed (flat once the pool is warm).
    [[nodiscard]] std::uint64_t allocs_total() const noexcept
    {
        return allocs_total_;
    }
    /// Packets handed out over the pool's lifetime.
    [[nodiscard]] std::uint64_t acquires_total() const noexcept
    {
        return acquires_total_;
    }
    /// Packets returned to the free list over the pool's lifetime.
    [[nodiscard]] std::uint64_t recycles_total() const noexcept
    {
        return recycles_total_;
    }
    /// Packets currently parked on the free list.
    [[nodiscard]] std::size_t free_count() const noexcept
    {
        return free_.size();
    }
    /// Packets currently in flight (acquired and not yet recycled).
    [[nodiscard]] std::uint64_t live() const noexcept
    {
        return acquires_total_ - recycles_total_;
    }

    /// The process-wide pool behind Packet::make_read / make_write.
    [[nodiscard]] static PacketPool& global();

    /// The calling thread's current pool: the process-wide pool by
    /// default, or the simulation domain's own pool while one is
    /// installed (by TopologyBuilder during domain construction and by
    /// the domain's worker thread before each window). Every runtime
    /// `packet_pool()` shorthand resolves through here, so allocation
    /// stays thread-confined under the parallel event core.
    [[nodiscard]] static PacketPool& current()
    {
        return current_ != nullptr ? *current_ : global();
    }
    static void set_current(PacketPool* pool) noexcept { current_ = pool; }

    /// Heap allocations across every pool in the process lifetime (the
    /// cold path and reserve() only). perf_baseline's zero-steady-state-
    /// allocation gate sums over domains through this instead of one
    /// pool's counter.
    [[nodiscard]] static std::uint64_t lifetime_allocs() noexcept
    {
        return lifetime_allocs_.load(std::memory_order_relaxed);
    }

  private:
    friend struct PacketDeleter;

    static thread_local PacketPool* current_;
    static std::atomic<std::uint64_t> lifetime_allocs_;

    void recycle(Packet* pkt) noexcept
    {
        ++recycles_total_;
        try {
            free_.push_back(pkt);
        } catch (...) {
            delete pkt; // free-list growth failed; fall back to the heap
        }
    }

    std::vector<Packet*> free_;
    std::uint64_t allocs_total_ = 0;
    std::uint64_t acquires_total_ = 0;
    std::uint64_t recycles_total_ = 0;
};

/// The calling thread's current packet pool (the process-wide pool unless
/// a simulation domain's pool is installed — see PacketPool::current()).
[[nodiscard]] inline PacketPool& packet_pool()
{
    return PacketPool::current();
}

/// Checkpoint/restore an owning packet slot, empty or occupied. On load an
/// occupied slot re-materializes from the calling thread's current pool —
/// the restoring component's own domain pool — preserving the
/// zero-steady-state-allocation property for the resumed run.
void ckpt_packet(Ckpt& ar, PacketPtr& pkt);

inline PacketPtr Packet::make_read(Addr addr, std::uint32_t size)
{
    return PacketPool::current().make_read(addr, size);
}

inline PacketPtr Packet::make_write(Addr addr, std::uint32_t size)
{
    return PacketPool::current().make_write(addr, size);
}

inline void PacketDeleter::operator()(Packet* pkt) const noexcept
{
    if (pkt == nullptr) {
        return;
    }
    if (pkt->pool_ != nullptr) {
        pkt->pool_->recycle(pkt);
    } else {
        delete pkt;
    }
}

} // namespace accesys::mem
