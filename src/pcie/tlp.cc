#include "pcie/tlp.hh"

#include <sstream>

namespace accesys::pcie {

std::string Tlp::describe() const
{
    std::ostringstream os;
    os << to_string(type) << " addr=0x" << std::hex << addr << std::dec
       << " len=" << length << " tag=" << static_cast<int>(tag) << " req="
       << requester;
    if (type == TlpType::completion) {
        os << " off=" << byte_offset << (is_last ? " last" : "");
    }
    return os.str();
}

TlpPtr make_mem_read(Addr addr, std::uint32_t length, std::uint8_t tag,
                     std::uint16_t requester)
{
    auto tlp = std::make_unique<Tlp>();
    tlp->type = TlpType::mem_read;
    tlp->addr = addr;
    tlp->length = length;
    tlp->tag = tag;
    tlp->requester = requester;
    return tlp;
}

TlpPtr make_mem_write(Addr addr, std::uint32_t length,
                      std::uint16_t requester)
{
    auto tlp = std::make_unique<Tlp>();
    tlp->type = TlpType::mem_write;
    tlp->addr = addr;
    tlp->length = length;
    tlp->requester = requester;
    return tlp;
}

TlpPtr make_completion(std::uint32_t length, std::uint8_t tag,
                       std::uint16_t requester, std::uint32_t byte_offset,
                       bool is_last)
{
    auto tlp = std::make_unique<Tlp>();
    tlp->type = TlpType::completion;
    tlp->length = length;
    tlp->tag = tag;
    tlp->requester = requester;
    tlp->byte_offset = byte_offset;
    tlp->is_last = is_last;
    return tlp;
}

} // namespace accesys::pcie
