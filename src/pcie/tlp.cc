#include "pcie/tlp.hh"

#include <sstream>

namespace accesys::pcie {

std::string Tlp::describe() const
{
    std::ostringstream os;
    os << to_string(type) << " addr=0x" << std::hex << addr << std::dec
       << " len=" << length << " tag=" << static_cast<int>(tag) << " req="
       << requester;
    if (type == TlpType::completion) {
        os << " off=" << byte_offset << (is_last ? " last" : "");
    }
    return os.str();
}

TlpPool::~TlpPool()
{
    for (Tlp* t : free_) {
        delete t;
    }
}

TlpPool& TlpPool::global()
{
    // Leaked intentionally: TLPs may be recycled from destructors of
    // static-storage objects, so the pool must outlive all of them.
    static TlpPool* pool = new TlpPool();
    return *pool;
}

thread_local TlpPool* TlpPool::current_ = nullptr;
std::atomic<std::uint64_t> TlpPool::lifetime_allocs_{0};

} // namespace accesys::pcie
