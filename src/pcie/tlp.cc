#include "pcie/tlp.hh"

#include <sstream>

#include "sim/serialize.hh"

namespace accesys::pcie {

std::string Tlp::describe() const
{
    std::ostringstream os;
    os << to_string(type) << " addr=0x" << std::hex << addr << std::dec
       << " len=" << length << " tag=" << static_cast<int>(tag) << " req="
       << requester;
    if (type == TlpType::completion) {
        os << " off=" << byte_offset << (is_last ? " last" : "");
    }
    return os.str();
}

TlpPool::~TlpPool()
{
    for (Tlp* t : free_) {
        delete t;
    }
}

TlpPool& TlpPool::global()
{
    // Leaked intentionally: TLPs may be recycled from destructors of
    // static-storage objects, so the pool must outlive all of them.
    static TlpPool* pool = new TlpPool();
    return *pool;
}

thread_local TlpPool* TlpPool::current_ = nullptr;
std::atomic<std::uint64_t> TlpPool::lifetime_allocs_{0};

void Tlp::serialize(Ckpt& ar)
{
    ar.io(type, addr, length, tag, requester, byte_offset, is_last, dl_seq,
          dl_corrupt, poisoned, data_size_);
    ar.raw(data_.data(), data_.size());
}

void TlpPool::serialize_counters(Ckpt& ar)
{
    ar.io(allocs_total_, acquires_total_, recycles_total_);
}

void ckpt_tlp(Ckpt& ar, TlpPtr& tlp)
{
    std::uint8_t present = tlp != nullptr ? 1 : 0;
    ar.io(present);
    if (present == 0) {
        if (ar.loading()) {
            tlp.reset();
        }
        return;
    }
    if (ar.loading()) {
        tlp = TlpPool::current().make();
    }
    tlp->serialize(ar);
}

} // namespace accesys::pcie
