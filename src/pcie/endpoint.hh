// PCIe endpoint base class: BAR-mapped register file plus DMA TLP plumbing.
//
// Subclasses (e.g. the MatrixFlow accelerator device) implement the MMIO
// register hooks and receive DMA read completions; they transmit via
// `send_tlp()`, which stages into a credit-gated egress queue.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mem/addr_range.hh"
#include "pcie/link.hh"
#include "sim/fault_injector.hh"
#include "sim/random.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::pcie {

struct EndpointParams {
    std::uint16_t device_id = 1; ///< requester id (0 is the host)
    double latency_ns = 20.0;    ///< device controller ingress latency
};

class Endpoint : public SimObject, public PcieNode {
  public:
    Endpoint(Simulator& sim, std::string name, const EndpointParams& params,
             std::vector<mem::AddrRange> bars);

    void connect_pcie(PciePort& port);

    [[nodiscard]] std::uint16_t device_id() const noexcept
    {
        return params_.device_id;
    }
    [[nodiscard]] const std::vector<mem::AddrRange>& bars() const noexcept
    {
        return bars_;
    }

    // PcieNode
    void recv_tlp(unsigned port_idx, TlpPtr tlp) override;
    void credit_avail(unsigned port_idx) override;

    /// Modeled function-level reset: drop everything parked in the ingress
    /// delay stage (releasing the link ingress credits each entry still
    /// holds — re-arming the link) and the staged egress queue, then sit
    /// busy until now() + `duration` ticks. Subclasses override to also
    /// drain their command/DMA state and call this base. Only legal under
    /// an active fault plan, from a quiescent point (between runs or at a
    /// quantum barrier on the endpoint's own domain thread).
    virtual void begin_flr(Tick duration);

    /// Inside a function-level reset window?
    [[nodiscard]] bool in_flr() const noexcept
    {
        return fault_ != nullptr && now() < fault_->flr_until;
    }

    /// Checkpoint/restore the delay and egress queues. Subclasses carrying
    /// extra state override, call this, and append their own fields.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  protected:
    /// Encode/decode a staged SentHook for checkpointing. The base class
    /// never produces hooks, so the defaults only handle the empty case;
    /// subclasses whose engines attach hooks must override both.
    [[nodiscard]] virtual std::uint64_t encode_sent_hook(
        const SentHook& hook) const;
    [[nodiscard]] virtual SentHook decode_sent_hook(std::uint64_t code);

    /// Register read at BAR-relative `addr`; returns the register value.
    virtual std::uint64_t mmio_read(Addr addr, std::uint32_t size) = 0;

    /// Register write at BAR-relative `addr`.
    virtual void mmio_write(Addr addr, std::uint32_t size,
                            std::uint64_t value) = 0;

    /// A DMA read completion arrived (tag identifies the request).
    virtual void recv_dma_completion(const Tlp& cpl) = 0;

    /// Transmit credits became available; DMA engines can push more.
    virtual void tx_ready() {}

    /// Stage a TLP for transmission; `on_sent` fires when it hits the wire.
    void send_tlp(TlpPtr tlp, SentHook on_sent = {});

    /// Number of TLPs waiting for wire/credits.
    [[nodiscard]] std::size_t egress_depth() const;

    /// Translate an absolute BAR address to a BAR-relative offset.
    [[nodiscard]] Addr bar_offset(Addr addr) const;

    /// Free ingress buffer for a TLP a subclass consumed in its own
    /// recv_tlp override (bypassing the base delay stage).
    void release_pcie_ingress(std::uint32_t payload_bytes);

    /// End of the current FLR window (0 when none was ever issued).
    [[nodiscard]] Tick flr_until() const noexcept
    {
        return fault_ != nullptr ? fault_->flr_until : 0;
    }

    /// Endpoint fault state present (active plan + faults enabled)?
    [[nodiscard]] bool fault_armed() const noexcept
    {
        return fault_ != nullptr;
    }

    /// This endpoint's fault site id (subclasses key additional RNG
    /// channels off it). Requires fault_armed().
    [[nodiscard]] unsigned fault_site_id() const;

    /// This endpoint's transmit direction has latched failed (replay
    /// budget exhausted on the downstream link). Reads only the tx-side
    /// latch this endpoint's domain thread owns.
    [[nodiscard]] bool pcie_tx_failed() const;

  private:
    void process_delayed();
    /// Deterministic per-completion poison decision (explicit one-shot
    /// events first, then the seeded Bernoulli stream).
    bool poison_roll();
    /// Inside an mmio_ur fault window? Advances the monotonic cursor.
    bool mmio_ur_active();

    EndpointParams params_;
    Tick latency_ticks_ = 0; ///< precomputed ticks_from_ns(latency_ns)
    std::vector<mem::AddrRange> bars_;
    PciePort* pcie_port_ = nullptr;

    struct Staged {
        TlpPtr tlp;
        SentHook on_sent;
    };
    RingBuffer<Staged> egress_q_;
    void kick_egress();

    struct Delayed {
        Tick ready = 0;
        TlpPtr tlp;
    };
    RingBuffer<Delayed> delay_q_;
    Event process_event_{"", nullptr};

    /// Device-level fault stats, registered only under an active plan so
    /// clean-run stat dumps are untouched.
    struct EpFaultStats {
        explicit EpFaultStats(stats::Group& g)
            : poisoned_cpls(g, "poisoned_cpls",
                            "DMA completions delivered with the poison bit"),
              ur_reads(g, "ur_reads",
                       "MMIO reads completed as all-ones unsupported-request"),
              ur_dropped_writes(g, "ur_dropped_writes",
                                "MMIO writes dropped in a UR window"),
              flrs(g, "flrs", "function-level resets performed"),
              flr_dropped_tlps(g, "flr_dropped_tlps",
                               "queued TLPs drained by function-level reset")
        {
        }
        stats::Scalar poisoned_cpls;
        stats::Scalar ur_reads;
        stats::Scalar ur_dropped_writes;
        stats::Scalar flrs;
        stats::Scalar flr_dropped_tlps;
    };

    /// Per-endpoint fault state: allocated in the constructor iff the
    /// simulator carries an enabled FaultInjector (any active plan), so an
    /// inactive plan costs a single null check on the hot paths.
    struct EpFaultState {
        EpFaultState(stats::Group& g, FaultInjector& fi,
                     const std::string& site_name);
        unsigned site_id = 0;
        Rng poison_rng{0};
        bool poison_rate_on = false;
        double poison_rate = 0.0;
        std::vector<Tick> poison_ticks; ///< one-shot explicit poisons
        std::size_t poison_idx = 0;
        std::vector<std::pair<Tick, Tick>> ur_windows;
        std::size_t ur_idx = 0;
        Tick flr_until = 0;
        EpFaultStats stats;
    };
    std::unique_ptr<EpFaultState> fault_;

    stats::Scalar mmio_reads_{stat_group(), "mmio_reads",
                              "register reads served"};
    stats::Scalar mmio_writes_{stat_group(), "mmio_writes",
                               "register writes served"};
    stats::Scalar dma_completions_{stat_group(), "dma_completions",
                                   "DMA completions received"};
    stats::Scalar tlps_sent_{stat_group(), "tlps_sent", "TLPs transmitted"};
};

} // namespace accesys::pcie
