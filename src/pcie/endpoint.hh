// PCIe endpoint base class: BAR-mapped register file plus DMA TLP plumbing.
//
// Subclasses (e.g. the MatrixFlow accelerator device) implement the MMIO
// register hooks and receive DMA read completions; they transmit via
// `send_tlp()`, which stages into a credit-gated egress queue.
#pragma once

#include <functional>
#include <vector>

#include "mem/addr_range.hh"
#include "pcie/link.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::pcie {

struct EndpointParams {
    std::uint16_t device_id = 1; ///< requester id (0 is the host)
    double latency_ns = 20.0;    ///< device controller ingress latency
};

class Endpoint : public SimObject, public PcieNode {
  public:
    Endpoint(Simulator& sim, std::string name, const EndpointParams& params,
             std::vector<mem::AddrRange> bars);

    void connect_pcie(PciePort& port);

    [[nodiscard]] std::uint16_t device_id() const noexcept
    {
        return params_.device_id;
    }
    [[nodiscard]] const std::vector<mem::AddrRange>& bars() const noexcept
    {
        return bars_;
    }

    // PcieNode
    void recv_tlp(unsigned port_idx, TlpPtr tlp) override;
    void credit_avail(unsigned port_idx) override;

    /// Checkpoint/restore the delay and egress queues. Subclasses carrying
    /// extra state override, call this, and append their own fields.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  protected:
    /// Encode/decode a staged SentHook for checkpointing. The base class
    /// never produces hooks, so the defaults only handle the empty case;
    /// subclasses whose engines attach hooks must override both.
    [[nodiscard]] virtual std::uint64_t encode_sent_hook(
        const SentHook& hook) const;
    [[nodiscard]] virtual SentHook decode_sent_hook(std::uint64_t code);

    /// Register read at BAR-relative `addr`; returns the register value.
    virtual std::uint64_t mmio_read(Addr addr, std::uint32_t size) = 0;

    /// Register write at BAR-relative `addr`.
    virtual void mmio_write(Addr addr, std::uint32_t size,
                            std::uint64_t value) = 0;

    /// A DMA read completion arrived (tag identifies the request).
    virtual void recv_dma_completion(const Tlp& cpl) = 0;

    /// Transmit credits became available; DMA engines can push more.
    virtual void tx_ready() {}

    /// Stage a TLP for transmission; `on_sent` fires when it hits the wire.
    void send_tlp(TlpPtr tlp, SentHook on_sent = {});

    /// Number of TLPs waiting for wire/credits.
    [[nodiscard]] std::size_t egress_depth() const;

    /// Translate an absolute BAR address to a BAR-relative offset.
    [[nodiscard]] Addr bar_offset(Addr addr) const;

    /// Free ingress buffer for a TLP a subclass consumed in its own
    /// recv_tlp override (bypassing the base delay stage).
    void release_pcie_ingress(std::uint32_t payload_bytes);

  private:
    void process_delayed();

    EndpointParams params_;
    Tick latency_ticks_ = 0; ///< precomputed ticks_from_ns(latency_ns)
    std::vector<mem::AddrRange> bars_;
    PciePort* pcie_port_ = nullptr;

    struct Staged {
        TlpPtr tlp;
        SentHook on_sent;
    };
    RingBuffer<Staged> egress_q_;
    void kick_egress();

    struct Delayed {
        Tick ready = 0;
        TlpPtr tlp;
    };
    RingBuffer<Delayed> delay_q_;
    Event process_event_{"", nullptr};

    stats::Scalar mmio_reads_{stat_group(), "mmio_reads",
                              "register reads served"};
    stats::Scalar mmio_writes_{stat_group(), "mmio_writes",
                               "register writes served"};
    stats::Scalar dma_completions_{stat_group(), "dma_completions",
                                   "DMA completions received"};
    stats::Scalar tlps_sent_{stat_group(), "tlps_sent", "TLPs transmitted"};
};

} // namespace accesys::pcie
