#include "pcie/endpoint.hh"

#include <cstring>

#include "sim/serialize.hh"

namespace accesys::pcie {

Endpoint::Endpoint(Simulator& sim, std::string name,
                   const EndpointParams& params,
                   std::vector<mem::AddrRange> bars)
    : SimObject(sim, std::move(name)), params_(params), bars_(std::move(bars))
{
    require_cfg(params_.device_id != 0,
                "endpoint device id 0 is reserved for the host");
    latency_ticks_ = ticks_from_ns(params_.latency_ns);
    process_event_.set_name(this->name() + ".process");
    process_event_.set_raw_callback(
        [](void* self) { static_cast<Endpoint*>(self)->process_delayed(); },
        this);
    if (FaultInjector* fi = sim.fault_injector(); fi != nullptr) {
        fault_ =
            std::make_unique<EpFaultState>(stat_group(), *fi, this->name());
    }
}

Endpoint::EpFaultState::EpFaultState(stats::Group& g, FaultInjector& fi,
                                     const std::string& site_name)
    : stats(g)
{
    site_id = fi.register_site(site_name);
    poison_rate_on = fi.poison_applies(site_name);
    poison_rate = fi.plan().poison_rate;
    poison_rng.reseed(fi.device_stream_seed(site_id, 0));
    std::vector<Tick> hang_ticks; // MatrixFlow collects its own
    fi.collect_device(site_name, hang_ticks, poison_ticks, ur_windows);
}

void Endpoint::connect_pcie(PciePort& port)
{
    ensure(pcie_port_ == nullptr, name(), ": PCIe port already connected");
    pcie_port_ = &port;
    port.attach(*this, 0);
}

void Endpoint::release_pcie_ingress(std::uint32_t payload_bytes)
{
    ensure(pcie_port_ != nullptr, name(), ": endpoint not connected");
    pcie_port_->release_ingress(payload_bytes);
}

Addr Endpoint::bar_offset(Addr addr) const
{
    for (const auto& bar : bars_) {
        if (bar.contains(addr)) {
            return addr - bar.start();
        }
    }
    panic(name(), ": address 0x", std::hex, addr, " not in any BAR");
}

void Endpoint::recv_tlp(unsigned /*port_idx*/, TlpPtr tlp)
{
    const Tick ready = now() + latency_ticks_;
    delay_q_.push_back(Delayed{ready, std::move(tlp)});
    if (!process_event_.scheduled()) {
        eq().schedule_express(process_event_, ready);
    }
}

void Endpoint::process_delayed()
{
    while (!delay_q_.empty() && delay_q_.front().ready <= now()) {
        TlpPtr tlp = std::move(delay_q_.front().tlp);
        delay_q_.pop_front();
        const std::uint32_t ingress_cost = tlp->payload_bytes();

        switch (tlp->type) {
        case TlpType::mem_read: {
            ++mmio_reads_;
            std::uint64_t value;
            if (fault_ != nullptr && mmio_ur_active()) {
                // Unsupported request: complete all-ones without touching
                // the register file.
                ++fault_->stats.ur_reads;
                value = ~std::uint64_t{0};
            } else {
                value = mmio_read(bar_offset(tlp->addr), tlp->length);
            }
            auto cpl = tlp_pool().make_completion(tlp->length, tlp->tag,
                                                  tlp->requester, 0, true);
            cpl->set_data(&value,
                          std::min<std::size_t>(tlp->length, sizeof(value)));
            send_tlp(std::move(cpl));
            break;
        }
        case TlpType::mem_write: {
            ++mmio_writes_;
            if (fault_ != nullptr && mmio_ur_active()) {
                // Posted write into a UR window: silently dropped, like a
                // real UR on a posted request (the host finds out via the
                // missing completion flag).
                ++fault_->stats.ur_dropped_writes;
                break;
            }
            std::uint64_t value = 0;
            if (tlp->has_data()) {
                std::memcpy(&value, tlp->data(),
                            std::min<std::size_t>(tlp->data_size(),
                                                  sizeof(value)));
            }
            mmio_write(bar_offset(tlp->addr), tlp->length, value);
            break;
        }
        case TlpType::completion:
            ++dma_completions_;
            if (fault_ != nullptr && poison_roll()) {
                tlp->poisoned = true;
                ++fault_->stats.poisoned_cpls;
            }
            recv_dma_completion(*tlp);
            break;
        }
        pcie_port_->release_ingress(ingress_cost);
    }
    if (!delay_q_.empty() && !process_event_.scheduled()) {
        eq().schedule_express(process_event_,
                                       delay_q_.front().ready);
    }
}

bool Endpoint::poison_roll()
{
    EpFaultState& f = *fault_;
    bool hit = false;
    if (f.poison_idx < f.poison_ticks.size() &&
        now() >= f.poison_ticks[f.poison_idx]) {
        ++f.poison_idx;
        hit = true;
    }
    if (f.poison_rate_on) {
        // Always consume the stream: the draw count per arrival is fixed,
        // so explicit events never shift the Bernoulli sequence.
        const bool rolled = f.poison_rng.chance(f.poison_rate);
        hit = hit || rolled;
    }
    return hit;
}

bool Endpoint::mmio_ur_active()
{
    EpFaultState& f = *fault_;
    while (f.ur_idx < f.ur_windows.size() &&
           now() >= f.ur_windows[f.ur_idx].second) {
        ++f.ur_idx;
    }
    return f.ur_idx < f.ur_windows.size() &&
           now() >= f.ur_windows[f.ur_idx].first;
}

unsigned Endpoint::fault_site_id() const
{
    ensure(fault_ != nullptr, name(), ": fault site id without fault state");
    return fault_->site_id;
}

bool Endpoint::pcie_tx_failed() const
{
    ensure(pcie_port_ != nullptr, name(), ": endpoint not connected");
    return pcie_port_->tx_failed();
}

void Endpoint::begin_flr(Tick duration)
{
    ensure(fault_ != nullptr, name(),
           ": function-level reset without an active fault plan");
    ++fault_->stats.flrs;
    // Every TLP parked in the ingress delay stage still holds link ingress
    // credits: drop the TLP and release them, re-arming the link.
    while (!delay_q_.empty()) {
        TlpPtr tlp = std::move(delay_q_.front().tlp);
        delay_q_.pop_front();
        ++fault_->stats.flr_dropped_tlps;
        pcie_port_->release_ingress(tlp->payload_bytes());
    }
    // Staged egress TLPs never consumed credits; their sent-hooks point at
    // function state that dies with this reset — drop them.
    while (!egress_q_.empty()) {
        egress_q_.pop_front();
        ++fault_->stats.flr_dropped_tlps;
    }
    fault_->flr_until = now() + duration;
}

void Endpoint::credit_avail(unsigned /*port_idx*/)
{
    // Under lazy link credits this fires only when a send was refused for
    // want of credits (PcieLink arms it from the failed can_send probe);
    // idle-link credit returns are harvested inline instead. Anything that
    // must make progress on credit availability has to stage through
    // send_tlp / kick_egress — which the DMA engine's egress-depth gating
    // and tx_ready() hook do.
    kick_egress();
    tx_ready();
}

void Endpoint::send_tlp(TlpPtr tlp, SentHook on_sent)
{
    ensure(pcie_port_ != nullptr, name(), ": endpoint not connected");
    // Uncongested fast path: nothing staged ahead and credits ready — send
    // without the ring round trip (order-identical: the queue was empty).
    if (egress_q_.empty() && pcie_port_->can_send(*tlp)) {
        pcie_port_->send(std::move(tlp));
        ++tlps_sent_;
        if (on_sent) {
            on_sent();
        }
        return;
    }
    egress_q_.push_back(Staged{std::move(tlp), on_sent});
    kick_egress();
}

std::size_t Endpoint::egress_depth() const
{
    return egress_q_.size();
}

std::uint64_t Endpoint::encode_sent_hook(const SentHook& hook) const
{
    ensure(!hook, name(), ": staged SentHook with no encoder");
    return 0;
}

SentHook Endpoint::decode_sent_hook(std::uint64_t /*code*/)
{
    panic(name(), ": SentHook decode without an encoder override");
}

void Endpoint::serialize(Ckpt& ar)
{
    std::uint64_t n_delay = delay_q_.size();
    std::uint64_t n_egress = egress_q_.size();
    ar.io(n_delay, n_egress);
    if (ar.saving()) {
        for (std::size_t i = 0; i < n_delay; ++i) {
            Delayed& d = delay_q_[i];
            ar.io(d.ready);
            ckpt_tlp(ar, d.tlp);
        }
        for (std::size_t i = 0; i < n_egress; ++i) {
            Staged& s = egress_q_[i];
            std::uint8_t has_hook = s.on_sent ? 1 : 0;
            std::uint64_t code = has_hook != 0
                                     ? encode_sent_hook(s.on_sent)
                                     : 0;
            ar.io(has_hook, code);
            ckpt_tlp(ar, s.tlp);
        }
    } else {
        delay_q_.clear();
        egress_q_.clear();
        for (std::uint64_t i = 0; i < n_delay; ++i) {
            Delayed d;
            ar.io(d.ready);
            ckpt_tlp(ar, d.tlp);
            delay_q_.push_back(std::move(d));
        }
        for (std::uint64_t i = 0; i < n_egress; ++i) {
            Staged s;
            std::uint8_t has_hook = 0;
            std::uint64_t code = 0;
            ar.io(has_hook, code);
            ckpt_tlp(ar, s.tlp);
            if (has_hook != 0) {
                s.on_sent = decode_sent_hook(code);
            }
            egress_q_.push_back(std::move(s));
        }
    }
    process_event_.serialize(ar, eq());
    if (fault_ != nullptr) {
        // Config-keyed presence (plan active + ACCESYS_FAULTS): a restore
        // against the same config reconstructs the same block.
        ar.io(fault_->poison_idx, fault_->ur_idx, fault_->flr_until);
        fault_->poison_rng.serialize(ar);
    }
}

void Endpoint::report_occupancy(std::string& out) const
{
    if (delay_q_.empty() && egress_q_.empty()) {
        return;
    }
    out += "  " + name() + ": ingress_delayed=" +
           std::to_string(delay_q_.size()) +
           ", egress_staged=" + std::to_string(egress_q_.size()) + "\n";
}

void Endpoint::kick_egress()
{
    ensure(pcie_port_ != nullptr, name(), ": endpoint not connected");
    while (!egress_q_.empty() && pcie_port_->can_send(*egress_q_.front().tlp)) {
        Staged staged = std::move(egress_q_.front());
        egress_q_.pop_front();
        pcie_port_->send(std::move(staged.tlp));
        ++tlps_sent_;
        if (staged.on_sent) {
            staged.on_sent();
        }
    }
}

} // namespace accesys::pcie
