// PCIe link: full-duplex serialization with credit-based flow control.
//
// A link joins two PcieNodes. Each direction independently serialises TLPs
// at the line rate (lanes × lane speed × encoding efficiency) and delivers
// them after a propagation delay. Transmission is gated by credits that
// mirror the receiver's ingress buffer (header slots + payload bytes);
// receivers release credits when they consume or forward a TLP, and the
// release travels back with the propagation delay.
//
// The `tlp_overhead_bytes` parameter lumps TLP header, LCRC, sequence number
// and framing symbols; DLLP (ack/fc) bandwidth is not modelled and is noted
// as a simplification in DESIGN.md.
//
// Credit accounting is *lazy* by default: a released ingress buffer is
// recorded with its return-arrival tick, but no event is scheduled unless
// the transmit side is actually starved (a can_send() probe failed). An
// unstarved sender simply harvests every matured return the next time it
// probes, so uncongested links carry zero credit events per TLP. When a
// probe fails, the pending kick is scheduled for the earliest in-flight
// return's arrival — the exact tick the eager model would have delivered
// its credit_avail() — so results are bit-identical by contract (locked by
// test_pool_determinism). ACCESYS_EAGER_CREDITS=1 (read at link
// construction) restores the per-return event as an escape hatch.
// Fault model (active only when a FaultPlan is configured — see
// sim/fault_injector.hh): each direction becomes a data-link layer with
// sequence numbers, a bounded replay buffer, cumulative ACK / NAK-once
// accounting and a replay timer. A TLP marked corrupted at transmit is
// discarded by the receiving end (never delivered) and recovered by
// retransmission from the replay buffer; TLPs that exhaust the replay
// budget are dropped for good (their flow-control credits synthesized
// back) and the direction latches failed — recovery above that point is
// the transaction layer's completion timeouts. Link-down windows drop
// everything in transit; the retrain at window end drains pending credit
// returns, re-arms full credits and kicks the starved transmitter, while
// the replay timer re-sends what the wire lost. Without a plan no fault
// state is allocated and no fault stat registered: the clean path and its
// stats dumps are bit-identical to a build without the fault model.
#pragma once

#include <memory>
#include <vector>

#include "pcie/tlp.hh"
#include "sim/fault_injector.hh"
#include "sim/random.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::pcie {

struct LinkParams {
    unsigned lanes = 4;
    double lane_gbps = 4.0; ///< raw line rate per lane (paper sweeps 2..64)
    Gen gen = Gen::gen2;
    double propagation_delay_ns = 5.0;
    std::uint32_t tlp_overhead_bytes = 24;
    /// Receiver ingress buffering advertised as credits, per direction.
    unsigned hdr_credits = 64;
    std::uint64_t data_credit_bytes = 16 * kKiB;

    /// Effective payload-agnostic bandwidth in GB/s (after encoding).
    [[nodiscard]] double effective_gbps() const
    {
        return lanes * lane_gbps * encoding_efficiency(gen) / 8.0;
    }

    /// Picoseconds to serialise `bytes` on the wire.
    [[nodiscard]] Tick serialize_ticks(std::uint64_t bytes) const
    {
        return static_cast<Tick>(static_cast<double>(bytes) * 1000.0 /
                                 effective_gbps());
    }

    void validate() const;

    /// Configure (lanes, lane speed) for a target *effective* bandwidth,
    /// mirroring the paper's "PCIe-xGB" system labels.
    [[nodiscard]] static LinkParams from_target_gbps(double gbps,
                                                     unsigned lanes = 8,
                                                     Gen gen = Gen::gen3);
};

class PcieLink;

/// Receiving interface implemented by RC / switch / endpoints.
class PcieNode {
  public:
    virtual ~PcieNode() = default;

    /// A TLP fully arrived into this node's ingress buffer on `port_idx`.
    /// The node must eventually call PciePort::release_ingress() with the
    /// same TLP's cost to free the buffer.
    virtual void recv_tlp(unsigned port_idx, TlpPtr tlp) = 0;

    /// Transmit credits became available on `port_idx` — kick egress queues.
    virtual void credit_avail(unsigned /*port_idx*/) {}
};

/// One end of a link. Owned by the link, used by the attached node.
class PciePort {
  public:
    /// Attach the consuming node; `node_port_idx` is the node's local index
    /// for this port (passed back in recv_tlp / credit_avail).
    void attach(PcieNode& node, unsigned node_port_idx);

    /// Would the peer's ingress accept this TLP right now? Harvests any
    /// matured lazy credit returns first; a failed probe arms the
    /// credit_avail() kick for this direction.
    [[nodiscard]] bool can_send(const Tlp& tlp) const;

    /// Transmit (requires can_send). Consumes peer-ingress credits.
    void send(TlpPtr tlp);

    /// The node consumed/forwarded a TLP received on this port: free the
    /// ingress buffer (one header slot + `payload_bytes` of data buffer)
    /// and return the credits to the peer's transmitter.
    void release_ingress(std::uint32_t payload_bytes);

    /// Transmit-credit views (diagnostics/tests); harvest matured lazy
    /// returns so the count matches what a can_send() probe would see.
    [[nodiscard]] unsigned hdr_credits() const;
    [[nodiscard]] std::uint64_t data_credits() const;

    /// This side's transmit direction has latched failed (replay budget
    /// exhausted). Reads only the tx-side latch the attached node's domain
    /// thread owns; always false on clean links.
    [[nodiscard]] bool tx_failed() const;

  private:
    friend class PcieLink;
    PcieLink* link_ = nullptr;
    unsigned side_ = 0; ///< 0 = end_a, 1 = end_b
    PcieNode* node_ = nullptr;
    unsigned node_port_idx_ = 0;
    // Transmit-side view of the peer's ingress buffer.
    unsigned tx_hdr_credits_ = 0;
    std::uint64_t tx_data_credits_ = 0;
};

/// FIFO egress staging in front of a PciePort; drains as credits allow.
class TlpQueue {
  public:
    explicit TlpQueue(PciePort& port) : port_(&port) {}

    void push(TlpPtr tlp)
    {
        // Uncongested fast path: nothing staged ahead and credits ready —
        // skip the ring round trip (order-identical: the queue was empty).
        if (q_.empty() && port_->can_send(*tlp)) {
            port_->send(std::move(tlp));
            return;
        }
        q_.push_back(std::move(tlp));
        kick();
    }

    /// Send as many queued TLPs as credits permit (call from credit_avail).
    void kick()
    {
        while (!q_.empty() && port_->can_send(*q_.front())) {
            port_->send(std::move(q_.front()));
            q_.pop_front();
        }
    }

    [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }

    /// Checkpoint/restore the staged TLPs (defined in link.cc).
    void serialize(Ckpt& ar);

  private:
    PciePort* port_;
    RingBuffer<TlpPtr> q_;
};

/// The wire. Symmetric; see file header for the model.
class PcieLink final : public SimObject {
  public:
    PcieLink(Simulator& sim, std::string name, const LinkParams& params);

    [[nodiscard]] PciePort& end_a() noexcept { return ports_[0]; }
    [[nodiscard]] PciePort& end_b() noexcept { return ports_[1]; }
    [[nodiscard]] const LinkParams& params() const noexcept
    {
        return params_;
    }

    /// Wire footprint of a TLP (payload + lumped overhead).
    [[nodiscard]] std::uint64_t wire_bytes(const Tlp& tlp) const
    {
        return tlp.payload_bytes() + params_.tlp_overhead_bytes;
    }

    /// Observed utilisation of direction a->b / b->a so far (0..1).
    [[nodiscard]] double utilization(unsigned dir) const;

    /// Propagation delay in ticks — the cross-domain lookahead this link
    /// contributes when it forms a simulation-domain boundary.
    [[nodiscard]] Tick prop_ticks() const noexcept { return prop_ticks_; }

    /// Mark this link as a simulation-domain boundary. `a_queue`/`b_queue`
    /// are the event queues of the domains owning end_a / end_b, and
    /// `a_pool`/`b_pool` the TLP pools traffic delivered *toward* each end
    /// is re-materialized into at barriers. From here on, each direction's
    /// cross-thread transfers (TLP handoffs, credit returns, the shared
    /// stat counters) stage in thread-confined buffers until
    /// flush_boundary() injects them — all timing derived from the staged
    /// arrival ticks, so results match the serial link exactly.
    void set_boundary(EventQueue& a_queue, TlpPool& a_pool,
                      EventQueue& b_queue, TlpPool& b_pool);

    /// Inject staged cross-domain traffic; root thread only, every domain
    /// quiesced (run from a Simulator barrier hook, in registration
    /// order). Returns the number of TLP handoffs injected.
    std::uint64_t flush_boundary();

    /// Arms the per-direction retrain events for scheduled link-down
    /// windows (fault model only; boundary wiring is final by startup).
    void startup() override;

    /// Checkpoint/restore wire state: per-side transmit credits, in-flight
    /// TLPs, pending credit returns, and — when the fault model is active —
    /// the full data-link recovery state (sequence numbers, replay buffer,
    /// ACK/NAK records, RNG stream positions, down-window cursors).
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

    /// Test hook: silently drop every future credit return toward `side`'s
    /// transmitter and zero its current balance, as if the peer stopped
    /// releasing its ingress buffers. Liveness-watchdog tests use this to
    /// fabricate a credit-leak deadlock; never called on the clean path.
    void test_leak_credits(unsigned side);

  private:
    friend class PciePort;

    struct InFlight {
        Tick arrival;
        TlpPtr tlp;
    };

    struct CreditReturn {
        Tick arrival;
        unsigned hdr;
        std::uint64_t data;
    };

    /// Per-direction state, split by owning thread in boundary mode: the
    /// transmit group is only touched by the domain that owns the sending
    /// end, the receive group by the domain that owns the delivering end
    /// (the alignas keeps the two groups off one cache line). The root
    /// thread touches both groups, but only in flush_boundary() while
    /// every domain is quiesced. In serial mode tx_q == rx_q == eq() and
    /// the staging buffers stay empty.
    struct alignas(64) Direction {
        // --- transmit side (owned by the sending domain's thread) -------
        EventQueue* tx_q = nullptr;
        Tick busy_until = 0;
        std::uint64_t busy_ticks = 0; ///< for utilisation stats
        RingBuffer<CreditReturn> credit_returns;
        Event credit_event;
        /// A can_send() probe on this side failed: schedule the pending
        /// credit kick instead of harvesting lazily.
        bool tx_starved = false;
        /// Boundary staging: TLPs sent this window, awaiting injection
        /// into the receive side at the barrier.
        RingBuffer<InFlight> staged_tlps;
        // Shadows of the link-level Scalars (which both directions share
        // and so cannot be bumped from two threads); folded exactly into
        // the Scalars at every flush.
        std::uint64_t sh_tlps = 0;
        std::uint64_t sh_payload = 0;
        std::uint64_t sh_wire = 0;
        // --- receive side (owned by the delivering domain's thread) -----
        alignas(64) EventQueue* rx_q = nullptr;
        TlpPool* rx_pool = nullptr;
        RingBuffer<InFlight> in_flight;
        Event deliver_event;
        /// Boundary staging: credit returns released by the receiver this
        /// window, bound for the transmit side's `credit_returns`.
        RingBuffer<CreditReturn> staged_credits;
    };

    // --- fault model (allocated only when a FaultPlan is active) -----------

    /// ACK/NAK record on the (lossless) DLLP side channel, receiver to
    /// transmitter. `seq` is cumulative: every sequence below it has been
    /// accepted; a NAK additionally requests replay from `seq`.
    struct DllRecord {
        Tick arrival = 0;
        std::uint64_t seq = 0;
        bool nak = false;
    };

    /// Replay-buffer entry: a value snapshot of a transmitted TLP plus
    /// the flow-control credits it consumed (replays bypass flow control;
    /// the credits are synthesized back if the TLP dies for good).
    struct ReplayEntry {
        Tick first_tx = 0;
        /// Tick the replay timer counts from: the expected ACK-return tick
        /// of the latest wire attempt (wire backlog + propagation both
        /// ways), so a congested link never looks like a lossy one. Falls
        /// back to the attempt tick when the wire was down and the attempt
        /// transmitted nothing.
        Tick ack_base = 0;
        std::uint64_t seq = 0;
        unsigned tries = 0; ///< retransmissions so far
        unsigned hdr_cost = 0;
        std::uint64_t data_cost = 0;
        Tlp tlp;
    };

    /// Per-direction fault/recovery state with the same thread-ownership
    /// split as Direction: the transmit group belongs to the sending
    /// domain, the receive group to the delivering domain; the root
    /// thread touches both only in flush_boundary() while quiesced.
    struct alignas(64) FaultDir {
        // --- transmit side -----------------------------------------------
        Rng rng;            ///< per-(site, dir) corruption stream
        bool rate_on = false;
        bool link_failed = false; ///< replay budget exhausted: fast-fail
        std::uint64_t next_seq = 0;
        RingBuffer<ReplayEntry> replay;
        RingBuffer<DllRecord> dll; ///< matured by `arrival`, tx harvests
        unsigned naks_pending = 0; ///< NAK records still in `dll`
        Event dll_event;           ///< NAK service / replay-starved kick
        Event replay_event;        ///< replay timer
        Event retrain_event;       ///< fires at each down-window end
        bool replay_starved = false;
        std::vector<Tick> corrupt_at; ///< one-shot corruption ticks
        std::size_t corrupt_idx = 0;
        std::vector<std::pair<Tick, Tick>> down; ///< link-down windows
        std::size_t tx_down_idx = 0;
        std::size_t retrain_idx = 0;
        // Boundary-mode stat shadows (transmit side).
        std::uint64_t sh_corrupted = 0;
        std::uint64_t sh_replays = 0;
        std::uint64_t sh_dropped_tx = 0;
        std::uint64_t sh_dead = 0;
        std::uint64_t sh_retrains = 0;
        /// Summed first-transmit-to-ACK ticks of replayed TLPs. Not a
        /// shadow: accumulated in integer ticks on the transmit side and
        /// read only at dump time (the recovery_ns ValueFn), so serial
        /// and parallel runs sum in the same exact arithmetic.
        std::uint64_t recovery_ticks = 0;
        // --- receive side ------------------------------------------------
        alignas(64) std::uint64_t expect_seq = 0;
        bool nak_armed = false; ///< NAK sent, replay not yet seen
        std::size_t rx_down_idx = 0;
        RingBuffer<DllRecord> staged_dll; ///< boundary staging, rx-owned
        std::uint64_t sh_naks = 0;
        std::uint64_t sh_dropped_rx = 0;
    };

    struct FaultState {
        FaultState(PcieLink& link, FaultInjector& fi);
        const FaultPlan& plan;
        unsigned site_id;
        Tick replay_timeout;
        FaultDir dir[2];
        stats::Scalar corrupted, naks, replays, dropped, dead, retrains;
        stats::ValueFn recovery_ns;
    };

    void fault_transmit(unsigned side, TlpPtr tlp);
    /// One wire attempt (first transmission or replay): rolls the
    /// corruption decision, drops during down windows, serializes and
    /// stages/queues delivery.
    /// One wire attempt (original or replay). Returns the tick the
    /// transmitter should expect the receiver's ACK back — arrival plus
    /// the return propagation — or 0 when the attempt hit a down window
    /// and transmitted nothing.
    Tick send_attempt(unsigned side, TlpPtr tlp, bool is_replay);
    /// Receiver-side DLL filter; true = deliver to the node.
    [[nodiscard]] bool fault_accept(unsigned dir, Tlp& tlp, Tick arrival);
    void queue_dll(unsigned dir, DllRecord rec);
    /// Apply matured ACK/NAK records; returns true when entries freed.
    bool harvest_acks(unsigned dir);
    void process_dll(unsigned dir);
    void replay_timer(unsigned dir);
    /// Retransmit every replay entry with seq >= `from_seq` (killing the
    /// ones past their replay budget).
    void do_replay(unsigned dir, std::uint64_t from_seq);
    void retrain(unsigned dir);
    void arm_replay_timer(unsigned dir);
    /// Return credits the wire ate (dead TLP / failed-direction drop).
    void synthesize_credits(unsigned side, unsigned hdr, std::uint64_t data);

    void transmit(unsigned from_side, TlpPtr tlp);
    void queue_credit_return(unsigned to_side, unsigned hdr,
                             std::uint64_t data);
    void deliver(unsigned dir);
    void credit(unsigned dir);
    /// Apply every credit return that has arrived by now() to `side`'s
    /// transmit counters (the lazy path's inline substitute for credit()).
    void harvest_credits(unsigned side);
    [[nodiscard]] bool can_send_from(unsigned side, const Tlp& tlp);

    LinkParams params_;
    bool eager_credits_ = false; ///< ACCESYS_EAGER_CREDITS escape hatch
    bool boundary_ = false;      ///< set by set_boundary()
    // Serialization/propagation constants hoisted out of the per-TLP path
    // (FP divides are too expensive to re-derive per packet).
    double ser_ps_per_byte_ = 0.0;
    Tick prop_ticks_ = 0;
    PciePort ports_[2];
    Direction dirs_[2]; ///< dirs_[0]: a->b, dirs_[1]: b->a
    bool test_credit_leak_[2] = {false, false}; ///< see test_leak_credits()
    /// Null on clean links — the fault model costs one branch per
    /// transmit/deliver/probe and nothing else.
    std::unique_ptr<FaultState> fault_;

    stats::Scalar tlps_{stat_group(), "tlps", "TLPs transported"};
    stats::Scalar payload_bytes_{stat_group(), "payload_bytes",
                                 "payload bytes transported"};
    stats::Scalar wire_bytes_{stat_group(), "wire_bytes",
                              "total wire bytes incl. overhead"};
};

} // namespace accesys::pcie
