#include "pcie/link.hh"

#include <algorithm>

#include "sim/env_flags.hh"

namespace accesys::pcie {

void LinkParams::validate() const
{
    require_cfg(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8 ||
                    lanes == 16 || lanes == 32,
                "PCIe lane count must be a standard width (got ", lanes, ")");
    require_cfg(lane_gbps > 0, "lane speed must be positive");
    require_cfg(hdr_credits > 0 && data_credit_bytes > 0,
                "flow-control credits must be non-zero");
}

LinkParams LinkParams::from_target_gbps(double gbps, unsigned lanes, Gen gen)
{
    require_cfg(gbps > 0, "target bandwidth must be positive");
    LinkParams p;
    p.lanes = lanes;
    p.gen = gen;
    p.lane_gbps = gbps * 8.0 / (lanes * encoding_efficiency(gen));
    return p;
}

void PciePort::attach(PcieNode& node, unsigned node_port_idx)
{
    ensure(node_ == nullptr, "PCIe port attached twice");
    node_ = &node;
    node_port_idx_ = node_port_idx;
}

bool PciePort::can_send(const Tlp& tlp) const
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    return link_->can_send_from(side_, tlp);
}

unsigned PciePort::hdr_credits() const
{
    if (link_ != nullptr) {
        link_->harvest_credits(side_);
    }
    return tx_hdr_credits_;
}

std::uint64_t PciePort::data_credits() const
{
    if (link_ != nullptr) {
        link_->harvest_credits(side_);
    }
    return tx_data_credits_;
}

void PciePort::send(TlpPtr tlp)
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    // Senders probe can_send() immediately before sending (it harvests any
    // matured lazy credit returns), so the guard here checks the already
    // harvested balance instead of paying a second harvest walk per TLP.
    ensure(tx_hdr_credits_ >= 1 &&
               tx_data_credits_ >= tlp->payload_bytes(),
           "PCIe send without credits");
    tx_hdr_credits_ -= 1;
    tx_data_credits_ -= tlp->payload_bytes();
    link_->transmit(side_, std::move(tlp));
}

void PciePort::release_ingress(std::uint32_t payload_bytes)
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    // Credits freed on our ingress return to the peer's transmitter.
    link_->queue_credit_return(1 - side_, 1, payload_bytes);
}

PcieLink::PcieLink(Simulator& sim, std::string name, const LinkParams& params)
    : SimObject(sim, std::move(name)), params_(params)
{
    params_.validate();
    eager_credits_ = env_flags().eager_credits;
    ser_ps_per_byte_ = 1000.0 / params_.effective_gbps();
    prop_ticks_ = ticks_from_ns(params_.propagation_delay_ns);
    for (unsigned side = 0; side < 2; ++side) {
        ports_[side].link_ = this;
        ports_[side].side_ = side;
        ports_[side].tx_hdr_credits_ = params_.hdr_credits;
        ports_[side].tx_data_credits_ = params_.data_credit_bytes;
        // Serial default: both directions run on the construction queue.
        dirs_[side].tx_q = &eq();
        dirs_[side].rx_q = &eq();
        dirs_[side].rx_pool = &tlp_pool();
    }
    dirs_[0].deliver_event.set_name(this->name() + ".deliver_ab");
    dirs_[0].deliver_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->deliver(0); }, this);
    dirs_[1].deliver_event.set_name(this->name() + ".deliver_ba");
    dirs_[1].deliver_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->deliver(1); }, this);
    dirs_[0].credit_event.set_name(this->name() + ".credit_ab");
    dirs_[0].credit_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->credit(0); }, this);
    dirs_[1].credit_event.set_name(this->name() + ".credit_ba");
    dirs_[1].credit_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->credit(1); }, this);
}

double PcieLink::utilization(unsigned dir) const
{
    const Tick elapsed = now();
    return elapsed == 0 ? 0.0
                        : static_cast<double>(dirs_[dir].busy_ticks) /
                              static_cast<double>(elapsed);
}

void PcieLink::set_boundary(EventQueue& a_queue, TlpPool& a_pool,
                            EventQueue& b_queue, TlpPool& b_pool)
{
    boundary_ = true;
    // dirs_[0] carries a->b: transmitted by end_a's domain, delivered
    // into end_b's; dirs_[1] is the mirror.
    dirs_[0].tx_q = &a_queue;
    dirs_[0].rx_q = &b_queue;
    dirs_[0].rx_pool = &b_pool;
    dirs_[1].tx_q = &b_queue;
    dirs_[1].rx_q = &a_queue;
    dirs_[1].rx_pool = &a_pool;
}

std::uint64_t PcieLink::flush_boundary()
{
    std::uint64_t moved = 0;
    for (auto& d : dirs_) {
        // TLP handoffs: re-materialize each staged TLP in the receiving
        // domain's pool (so its eventual recycle stays thread-confined)
        // and retire the original into its own pool — both safe here, the
        // owning domains are quiesced. Arrivals are monotonic per
        // direction, so appending preserves in_flight's sort order and
        // the front-arrival arming below matches the serial schedule.
        while (!d.staged_tlps.empty()) {
            InFlight& f = d.staged_tlps.front();
            TlpPtr clone = d.rx_pool->make();
            *clone = *f.tlp;
            d.in_flight.push_back(InFlight{f.arrival, std::move(clone)});
            f.tlp.reset();
            d.staged_tlps.pop_front();
            ++moved;
        }
        if (!d.in_flight.empty() && !d.deliver_event.scheduled()) {
            d.rx_q->schedule_express(d.deliver_event,
                                     d.in_flight.front().arrival);
        }
        // Credit returns: append to the transmit side's ring (arrival
        // order again preserved) and arm the kick exactly as the serial
        // lazy model would — at the earliest pending return's arrival,
        // only if the transmitter is starved (or eager mode insists).
        const bool had_credits = !d.staged_credits.empty();
        while (!d.staged_credits.empty()) {
            d.credit_returns.push_back(d.staged_credits.front());
            d.staged_credits.pop_front();
        }
        if (had_credits && (eager_credits_ || d.tx_starved) &&
            !d.credit_event.scheduled()) {
            d.tx_q->schedule_express(d.credit_event,
                                     d.credit_returns.front().arrival);
        }
        // Fold the stat shadows (exact: integer-valued doubles).
        if (d.sh_tlps != 0) {
            tlps_ += static_cast<double>(d.sh_tlps);
            payload_bytes_ += static_cast<double>(d.sh_payload);
            wire_bytes_ += static_cast<double>(d.sh_wire);
            d.sh_tlps = 0;
            d.sh_payload = 0;
            d.sh_wire = 0;
        }
    }
    return moved;
}

void PcieLink::transmit(unsigned from_side, TlpPtr tlp)
{
    // dir 0 carries a->b (from side 0), dir 1 carries b->a.
    Direction& d = dirs_[from_side];

    const std::uint64_t bytes = wire_bytes(*tlp);
    const Tick start = std::max(d.tx_q->now(), d.busy_until);
    const Tick ser =
        static_cast<Tick>(static_cast<double>(bytes) * ser_ps_per_byte_);
    d.busy_until = start + ser;
    d.busy_ticks += ser;
    const Tick arrival = d.busy_until + prop_ticks_;

    if (boundary_) {
        // Cross-domain: stage on the transmit side. The arrival is at
        // least a propagation delay (>= the barrier quantum) away, so the
        // barrier that injects it always precedes the delivery window.
        d.sh_tlps += 1;
        d.sh_payload += tlp->payload_bytes();
        d.sh_wire += bytes;
        d.staged_tlps.push_back(InFlight{arrival, std::move(tlp)});
        return;
    }

    ++tlps_;
    payload_bytes_ += tlp->payload_bytes();
    wire_bytes_ += static_cast<double>(bytes);

    d.in_flight.push_back(InFlight{arrival, std::move(tlp)});
    if (!d.deliver_event.scheduled()) {
        d.rx_q->schedule_express(d.deliver_event, arrival);
    }
}

void PcieLink::deliver(unsigned dir)
{
    Direction& d = dirs_[dir];
    while (!d.in_flight.empty() &&
           d.in_flight.front().arrival <= d.rx_q->now()) {
        TlpPtr tlp = std::move(d.in_flight.front().tlp);
        d.in_flight.pop_front();
        PciePort& rx = ports_[1 - dir]; // dir 0 lands at end_b (side 1)
        ensure(rx.node_ != nullptr, name(), ": unattached PCIe port");
        rx.node_->recv_tlp(rx.node_port_idx_, std::move(tlp));
    }
    if (!d.in_flight.empty()) {
        d.rx_q->schedule_express(d.deliver_event,
                                 d.in_flight.front().arrival);
    }
}

void PcieLink::queue_credit_return(unsigned to_side, unsigned hdr,
                                   std::uint64_t data)
{
    // Direction index named by the side whose transmitter gets the credits.
    // Called by that direction's *receiver* (release_ingress), so the
    // clock — and in boundary mode the staging ring — is the rx side's.
    Direction& d = dirs_[to_side];
    const Tick arrival = d.rx_q->now() + prop_ticks_;
    if (boundary_) {
        d.staged_credits.push_back(CreditReturn{arrival, hdr, data});
        return;
    }
    d.credit_returns.push_back(CreditReturn{arrival, hdr, data});
    // Lazy accounting: an unstarved transmitter harvests this return the
    // next time it probes can_send(); only a starved one needs the event.
    if ((eager_credits_ || d.tx_starved) && !d.credit_event.scheduled()) {
        d.tx_q->schedule_express(d.credit_event, arrival);
    }
}

void PcieLink::harvest_credits(unsigned side)
{
    Direction& d = dirs_[side];
    while (!d.credit_returns.empty() &&
           d.credit_returns.front().arrival <= d.tx_q->now()) {
        const CreditReturn cr = d.credit_returns.front();
        d.credit_returns.pop_front();
        ports_[side].tx_hdr_credits_ += cr.hdr;
        ports_[side].tx_data_credits_ += cr.data;
    }
}

bool PcieLink::can_send_from(unsigned side, const Tlp& tlp)
{
    PciePort& p = ports_[side];
    if (!eager_credits_) {
        harvest_credits(side);
    }
    if (p.tx_hdr_credits_ >= 1 &&
        p.tx_data_credits_ >= tlp.payload_bytes()) {
        return true;
    }
    if (!eager_credits_) {
        // Starved: arm the kick at the earliest in-flight return — the
        // same tick the eager model's credit event would have fired.
        Direction& d = dirs_[side];
        d.tx_starved = true;
        if (!d.credit_returns.empty() && !d.credit_event.scheduled()) {
            d.tx_q->schedule_express(d.credit_event,
                                     d.credit_returns.front().arrival);
        }
    }
    return false;
}

void PcieLink::credit(unsigned dir)
{
    Direction& d = dirs_[dir];
    const bool was_starved = d.tx_starved;
    bool granted = false;
    while (!d.credit_returns.empty() &&
           d.credit_returns.front().arrival <= d.tx_q->now()) {
        const CreditReturn cr = d.credit_returns.front();
        d.credit_returns.pop_front();
        ports_[dir].tx_hdr_credits_ += cr.hdr;
        ports_[dir].tx_data_credits_ += cr.data;
        granted = true;
    }
    // Clear before the kick: a still-starved sender's can_send() probe
    // inside credit_avail() re-arms the next pending arrival. The kick
    // also fires when this event granted nothing but the direction was
    // starved: a same-tick can_send() probe earlier in the batch may have
    // harvested the matured returns inline, and without the kick here the
    // sender whose wakeup those returns carried would wait forever.
    d.tx_starved = false;
    if (granted || was_starved) {
        PciePort& tx = ports_[dir];
        ensure(tx.node_ != nullptr, name(), ": unattached PCIe port");
        tx.node_->credit_avail(tx.node_port_idx_);
    }
    if (!d.credit_returns.empty() &&
        (eager_credits_ || d.tx_starved) && !d.credit_event.scheduled()) {
        d.tx_q->schedule_express(d.credit_event,
                                 d.credit_returns.front().arrival);
    }
}

} // namespace accesys::pcie
