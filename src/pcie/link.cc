#include "pcie/link.hh"

#include <algorithm>

#include "sim/env_flags.hh"
#include "sim/serialize.hh"

namespace accesys::pcie {

void LinkParams::validate() const
{
    require_cfg(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8 ||
                    lanes == 16 || lanes == 32,
                "PCIe lane count must be a standard width (got ", lanes, ")");
    require_cfg(lane_gbps > 0, "lane speed must be positive");
    require_cfg(hdr_credits > 0 && data_credit_bytes > 0,
                "flow-control credits must be non-zero");
}

LinkParams LinkParams::from_target_gbps(double gbps, unsigned lanes, Gen gen)
{
    require_cfg(gbps > 0, "target bandwidth must be positive");
    LinkParams p;
    p.lanes = lanes;
    p.gen = gen;
    p.lane_gbps = gbps * 8.0 / (lanes * encoding_efficiency(gen));
    return p;
}

void PciePort::attach(PcieNode& node, unsigned node_port_idx)
{
    ensure(node_ == nullptr, "PCIe port attached twice");
    node_ = &node;
    node_port_idx_ = node_port_idx;
}

bool PciePort::can_send(const Tlp& tlp) const
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    return link_->can_send_from(side_, tlp);
}

unsigned PciePort::hdr_credits() const
{
    if (link_ != nullptr) {
        link_->harvest_credits(side_);
    }
    return tx_hdr_credits_;
}

std::uint64_t PciePort::data_credits() const
{
    if (link_ != nullptr) {
        link_->harvest_credits(side_);
    }
    return tx_data_credits_;
}

bool PciePort::tx_failed() const
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    return link_->fault_ != nullptr &&
           link_->fault_->dir[side_].link_failed;
}

void PciePort::send(TlpPtr tlp)
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    // Senders probe can_send() immediately before sending (it harvests any
    // matured lazy credit returns), so the guard here checks the already
    // harvested balance instead of paying a second harvest walk per TLP.
    ensure(tx_hdr_credits_ >= 1 &&
               tx_data_credits_ >= tlp->payload_bytes(),
           "PCIe send without credits");
    tx_hdr_credits_ -= 1;
    tx_data_credits_ -= tlp->payload_bytes();
    link_->transmit(side_, std::move(tlp));
}

void PciePort::release_ingress(std::uint32_t payload_bytes)
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    // Credits freed on our ingress return to the peer's transmitter.
    link_->queue_credit_return(1 - side_, 1, payload_bytes);
}

PcieLink::PcieLink(Simulator& sim, std::string name, const LinkParams& params)
    : SimObject(sim, std::move(name)), params_(params)
{
    params_.validate();
    eager_credits_ = env_flags().eager_credits;
    ser_ps_per_byte_ = 1000.0 / params_.effective_gbps();
    prop_ticks_ = ticks_from_ns(params_.propagation_delay_ns);
    for (unsigned side = 0; side < 2; ++side) {
        ports_[side].link_ = this;
        ports_[side].side_ = side;
        ports_[side].tx_hdr_credits_ = params_.hdr_credits;
        ports_[side].tx_data_credits_ = params_.data_credit_bytes;
        // Serial default: both directions run on the construction queue.
        dirs_[side].tx_q = &eq();
        dirs_[side].rx_q = &eq();
        dirs_[side].rx_pool = &tlp_pool();
    }
    dirs_[0].deliver_event.set_name(this->name() + ".deliver_ab");
    dirs_[0].deliver_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->deliver(0); }, this);
    dirs_[1].deliver_event.set_name(this->name() + ".deliver_ba");
    dirs_[1].deliver_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->deliver(1); }, this);
    dirs_[0].credit_event.set_name(this->name() + ".credit_ab");
    dirs_[0].credit_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->credit(0); }, this);
    dirs_[1].credit_event.set_name(this->name() + ".credit_ba");
    dirs_[1].credit_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->credit(1); }, this);
    if (FaultInjector* fi = sim.fault_injector()) {
        fault_ = std::make_unique<FaultState>(*this, *fi);
    }
}

PcieLink::FaultState::FaultState(PcieLink& link, FaultInjector& fi)
    : plan(fi.plan()),
      site_id(fi.register_site(link.name())),
      replay_timeout(ticks_from_ns(plan.replay_timeout_ns)),
      corrupted(link.stat_group(), "link_corrupted_tlps",
                "TLPs marked corrupted at transmit"),
      naks(link.stat_group(), "link_nak_count", "NAKs sent by receivers"),
      replays(link.stat_group(), "link_replays",
              "TLP retransmissions from the replay buffer"),
      dropped(link.stat_group(), "link_dropped_tlps",
              "TLP transmissions discarded (corrupt/out-of-seq/down)"),
      dead(link.stat_group(), "link_dead_tlps",
           "TLPs dropped for good after exhausting the replay budget"),
      retrains(link.stat_group(), "link_retrains",
               "link retrains after down windows"),
      recovery_ns(link.stat_group(), "recovery_ns",
                  "summed first-transmit-to-ACK latency of replayed TLPs",
                  [this] {
                      return ticks_to_ns(dir[0].recovery_ticks +
                                         dir[1].recovery_ticks);
                  })
{
    static constexpr const char* kDirSuffix[2] = {"_ab", "_ba"};
    for (unsigned s = 0; s < 2; ++s) {
        FaultDir& f = dir[s];
        f.rng.reseed(fi.stream_seed(site_id, s));
        f.rate_on = fi.rate_applies(link.name());
        fi.collect(link.name(), s, f.corrupt_at, f.down);
        f.dll_event.set_name(link.name() + ".dll" + kDirSuffix[s]);
        f.replay_event.set_name(link.name() + ".replay" + kDirSuffix[s]);
        f.retrain_event.set_name(link.name() + ".retrain" + kDirSuffix[s]);
    }
    dir[0].dll_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->process_dll(0); },
        &link);
    dir[1].dll_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->process_dll(1); },
        &link);
    dir[0].replay_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->replay_timer(0); },
        &link);
    dir[1].replay_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->replay_timer(1); },
        &link);
    dir[0].retrain_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->retrain(0); },
        &link);
    dir[1].retrain_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->retrain(1); },
        &link);
}

void PcieLink::startup()
{
    if (fault_ == nullptr) {
        return;
    }
    // Boundary wiring (set_boundary) is final here, so each direction's
    // retrain event lands on the queue that owns its transmit state.
    for (unsigned s = 0; s < 2; ++s) {
        FaultDir& f = fault_->dir[s];
        if (!f.down.empty()) {
            dirs_[s].tx_q->schedule(f.retrain_event, f.down[0].second);
        }
    }
}

double PcieLink::utilization(unsigned dir) const
{
    const Tick elapsed = now();
    return elapsed == 0 ? 0.0
                        : static_cast<double>(dirs_[dir].busy_ticks) /
                              static_cast<double>(elapsed);
}

void PcieLink::set_boundary(EventQueue& a_queue, TlpPool& a_pool,
                            EventQueue& b_queue, TlpPool& b_pool)
{
    boundary_ = true;
    // dirs_[0] carries a->b: transmitted by end_a's domain, delivered
    // into end_b's; dirs_[1] is the mirror.
    dirs_[0].tx_q = &a_queue;
    dirs_[0].rx_q = &b_queue;
    dirs_[0].rx_pool = &b_pool;
    dirs_[1].tx_q = &b_queue;
    dirs_[1].rx_q = &a_queue;
    dirs_[1].rx_pool = &a_pool;
}

std::uint64_t PcieLink::flush_boundary()
{
    std::uint64_t moved = 0;
    if (fault_ != nullptr) {
        for (unsigned s = 0; s < 2; ++s) {
            Direction& d = dirs_[s];
            FaultDir& f = fault_->dir[s];
            // DLL records cross the domain boundary exactly like credit
            // returns: arrival order preserved, the kick armed as the
            // serial model would — always for NAKs, for ACKs only when
            // the transmitter is replay-starved.
            bool want_kick = false;
            while (!f.staged_dll.empty()) {
                const DllRecord rec = f.staged_dll.take_front();
                if (rec.nak) {
                    ++f.naks_pending;
                    want_kick = true;
                }
                f.dll.push_back(rec);
            }
            if ((want_kick || (f.replay_starved && !f.dll.empty())) &&
                !f.dll_event.scheduled()) {
                d.tx_q->schedule_express(
                    f.dll_event,
                    std::max(d.tx_q->now(), f.dll.front().arrival));
            }
            // Fold the fault-stat shadows (exact integer-valued doubles,
            // except recovery_ns which is a plain sum either way).
            fault_->corrupted += static_cast<double>(f.sh_corrupted);
            fault_->naks += static_cast<double>(f.sh_naks);
            fault_->replays += static_cast<double>(f.sh_replays);
            fault_->dropped +=
                static_cast<double>(f.sh_dropped_tx + f.sh_dropped_rx);
            fault_->dead += static_cast<double>(f.sh_dead);
            fault_->retrains += static_cast<double>(f.sh_retrains);
            f.sh_corrupted = f.sh_naks = f.sh_replays = 0;
            f.sh_dropped_tx = f.sh_dropped_rx = 0;
            f.sh_dead = f.sh_retrains = 0;
        }
    }
    for (auto& d : dirs_) {
        // TLP handoffs: re-materialize each staged TLP in the receiving
        // domain's pool (so its eventual recycle stays thread-confined)
        // and retire the original into its own pool — both safe here, the
        // owning domains are quiesced. Arrivals are monotonic per
        // direction, so appending preserves in_flight's sort order and
        // the front-arrival arming below matches the serial schedule.
        while (!d.staged_tlps.empty()) {
            InFlight& f = d.staged_tlps.front();
            TlpPtr clone = d.rx_pool->make();
            *clone = *f.tlp;
            d.in_flight.push_back(InFlight{f.arrival, std::move(clone)});
            f.tlp.reset();
            d.staged_tlps.pop_front();
            ++moved;
        }
        if (!d.in_flight.empty() && !d.deliver_event.scheduled()) {
            d.rx_q->schedule_express(d.deliver_event,
                                     d.in_flight.front().arrival);
        }
        // Credit returns: append to the transmit side's ring (arrival
        // order again preserved) and arm the kick exactly as the serial
        // lazy model would — at the earliest pending return's arrival,
        // only if the transmitter is starved (or eager mode insists).
        const bool had_credits = !d.staged_credits.empty();
        while (!d.staged_credits.empty()) {
            d.credit_returns.push_back(d.staged_credits.front());
            d.staged_credits.pop_front();
        }
        if (had_credits && (eager_credits_ || d.tx_starved) &&
            !d.credit_event.scheduled()) {
            d.tx_q->schedule_express(d.credit_event,
                                     d.credit_returns.front().arrival);
        }
        // Fold the stat shadows (exact: integer-valued doubles).
        if (d.sh_tlps != 0) {
            tlps_ += static_cast<double>(d.sh_tlps);
            payload_bytes_ += static_cast<double>(d.sh_payload);
            wire_bytes_ += static_cast<double>(d.sh_wire);
            d.sh_tlps = 0;
            d.sh_payload = 0;
            d.sh_wire = 0;
        }
    }
    return moved;
}

namespace {

/// Is `t` inside one of the sorted, merged `[start, end)` windows?
/// `idx` is a monotonic cursor (each caller's probe ticks never go back).
bool in_window(const std::vector<std::pair<Tick, Tick>>& w, std::size_t& idx,
               Tick t)
{
    while (idx < w.size() && w[idx].second <= t) {
        ++idx;
    }
    return idx < w.size() && t >= w[idx].first;
}

} // namespace

void PcieLink::synthesize_credits(unsigned side, unsigned hdr,
                                  std::uint64_t data)
{
    // The wire ate a TLP for good: hand its flow-control credits straight
    // back to the transmit side (the receiver will never release them).
    // Thread-safe: only ever called from `side`'s own transmit path.
    Direction& d = dirs_[side];
    d.credit_returns.push_back(CreditReturn{d.tx_q->now(), hdr, data});
    if ((eager_credits_ || d.tx_starved) && !d.credit_event.scheduled()) {
        d.tx_q->schedule_express(d.credit_event, d.tx_q->now());
    }
}

void PcieLink::arm_replay_timer(unsigned dir)
{
    FaultDir& f = fault_->dir[dir];
    if (!f.replay.empty() && !f.replay_event.scheduled()) {
        dirs_[dir].tx_q->schedule(f.replay_event,
                                  dirs_[dir].tx_q->now() +
                                      fault_->replay_timeout);
    }
}

void PcieLink::fault_transmit(unsigned side, TlpPtr tlp)
{
    Direction& d = dirs_[side];
    FaultDir& f = fault_->dir[side];
    if (f.link_failed) {
        // Direction declared dead: swallow the TLP, return its credits so
        // upstream queues drain, and let completion timeouts surface the
        // loss.
        if (boundary_) {
            ++f.sh_dead;
        } else {
            ++fault_->dead;
        }
        synthesize_credits(side, 1, tlp->payload_bytes());
        return;
    }
    tlp->dl_seq = f.next_seq++;
    ReplayEntry e;
    e.first_tx = e.ack_base = d.tx_q->now();
    e.seq = tlp->dl_seq;
    e.hdr_cost = 1;
    e.data_cost = tlp->payload_bytes();
    e.tlp = *tlp; // value snapshot — pool-less, survives delivery
    f.replay.push_back(std::move(e));
    arm_replay_timer(side);
    const Tick ack_due = send_attempt(side, std::move(tlp),
                                      /*is_replay=*/false);
    if (ack_due != 0) {
        f.replay[f.replay.size() - 1].ack_base = ack_due;
    }
}

Tick PcieLink::send_attempt(unsigned side, TlpPtr tlp, bool is_replay)
{
    Direction& d = dirs_[side];
    FaultDir& f = fault_->dir[side];
    const Tick start = std::max(d.tx_q->now(), d.busy_until);

    // A downed link transmits nothing: the TLP stays in the replay buffer
    // and the replay timer re-sends it after the retrain.
    if (in_window(f.down, f.tx_down_idx, start)) {
        if (boundary_) {
            ++f.sh_dropped_tx;
        } else {
            ++fault_->dropped;
        }
        return 0;
    }

    // Corruption is decided per wire attempt — a replay can be hit again.
    bool corrupt = f.rate_on && f.rng.chance(fault_->plan.corrupt_rate);
    if (!corrupt && f.corrupt_idx < f.corrupt_at.size() &&
        start >= f.corrupt_at[f.corrupt_idx]) {
        corrupt = true;
        ++f.corrupt_idx;
    }
    tlp->dl_corrupt = corrupt;
    if (corrupt) {
        if (boundary_) {
            ++f.sh_corrupted;
        } else {
            ++fault_->corrupted;
        }
    }

    const std::uint64_t bytes = wire_bytes(*tlp);
    const Tick ser =
        static_cast<Tick>(static_cast<double>(bytes) * ser_ps_per_byte_);
    d.busy_until = start + ser;
    d.busy_ticks += ser;
    const Tick arrival = d.busy_until + prop_ticks_;

    if (boundary_) {
        if (!is_replay) {
            d.sh_tlps += 1;
            d.sh_payload += tlp->payload_bytes();
            d.sh_wire += bytes;
        }
        d.staged_tlps.push_back(InFlight{arrival, std::move(tlp)});
        return arrival + prop_ticks_;
    }
    if (!is_replay) {
        ++tlps_;
        payload_bytes_ += tlp->payload_bytes();
        wire_bytes_ += static_cast<double>(bytes);
    }
    d.in_flight.push_back(InFlight{arrival, std::move(tlp)});
    if (!d.deliver_event.scheduled()) {
        d.rx_q->schedule_express(d.deliver_event, arrival);
    }
    return arrival + prop_ticks_;
}

bool PcieLink::fault_accept(unsigned dir, Tlp& tlp, Tick arrival)
{
    FaultDir& f = fault_->dir[dir];
    const auto drop = [&] {
        if (boundary_) {
            ++f.sh_dropped_rx;
        } else {
            ++fault_->dropped;
        }
    };
    const auto nak = [&] {
        if (boundary_) {
            ++f.sh_naks;
        } else {
            ++fault_->naks;
        }
        f.nak_armed = true;
        queue_dll(dir, DllRecord{arrival + prop_ticks_, f.expect_seq, true});
    };

    // Receiver off during a down window: the TLP evaporates on the wire.
    if (in_window(f.down, f.rx_down_idx, arrival)) {
        drop();
        return false;
    }
    if (tlp.dl_corrupt) {
        // A failed LCRC always NAKs — a replayed TLP corrupted again
        // draws another NAK (this is what a NAK storm is made of).
        drop();
        nak();
        return false;
    }
    if (tlp.dl_seq != f.expect_seq) {
        drop();
        // Gap after a loss: NAK once per error window. Duplicates from
        // replay overlap (seq below expected) are discarded silently.
        if (tlp.dl_seq > f.expect_seq && !f.nak_armed) {
            nak();
        }
        return false;
    }
    f.expect_seq = tlp.dl_seq + 1;
    f.nak_armed = false;
    // Cumulative ACK: everything below expect_seq has been accepted.
    queue_dll(dir, DllRecord{arrival + prop_ticks_, f.expect_seq, false});
    return true;
}

void PcieLink::queue_dll(unsigned dir, DllRecord rec)
{
    // Called by direction `dir`'s receiver; the record travels back to
    // the transmit side, arriving a propagation delay later.
    Direction& d = dirs_[dir];
    FaultDir& f = fault_->dir[dir];
    if (boundary_) {
        f.staged_dll.push_back(rec);
        return;
    }
    const bool nak = rec.nak;
    f.dll.push_back(rec);
    if (nak) {
        ++f.naks_pending;
    }
    // Lazy like credit returns: ACKs are harvested by the next transmit
    // probe; only NAKs (which must trigger replay unprompted) and a
    // replay-starved transmitter need the event.
    if ((nak || f.replay_starved) && !f.dll_event.scheduled()) {
        // Clamp: the front record can be a stale, lazily-unharvested ACK
        // whose arrival tick is already in the past.
        d.tx_q->schedule_express(
            f.dll_event, std::max(d.tx_q->now(), f.dll.front().arrival));
    }
}

bool PcieLink::harvest_acks(unsigned dir)
{
    Direction& d = dirs_[dir];
    FaultDir& f = fault_->dir[dir];
    bool freed = false;
    while (!f.dll.empty() && f.dll.front().arrival <= d.tx_q->now()) {
        const DllRecord rec = f.dll.take_front();
        while (!f.replay.empty() && f.replay.front().seq < rec.seq) {
            const ReplayEntry& e = f.replay.front();
            if (e.tries > 0) {
                f.recovery_ticks += rec.arrival - e.first_tx;
            }
            f.replay.pop_front();
            freed = true;
        }
        if (rec.nak) {
            --f.naks_pending;
            do_replay(dir, rec.seq);
        }
    }
    return freed;
}

void PcieLink::do_replay(unsigned dir, std::uint64_t from_seq)
{
    FaultDir& f = fault_->dir[dir];
    if (f.link_failed) {
        return;
    }
    for (std::size_t i = 0; i < f.replay.size();) {
        ReplayEntry& e = f.replay[i];
        if (e.seq < from_seq) {
            ++i;
            continue;
        }
        if (e.tries >= fault_->plan.max_replays) {
            // Replay budget exhausted: this TLP is gone for good and the
            // direction can never re-sync its sequence — latch it failed
            // so later traffic fast-fails instead of storming.
            if (boundary_) {
                ++f.sh_dead;
            } else {
                ++fault_->dead;
            }
            synthesize_credits(dir, e.hdr_cost, e.data_cost);
            f.link_failed = true;
            f.replay.erase_at(i);
            break; // the flush below retires whatever is left
        }
        ++e.tries;
        e.ack_base = dirs_[dir].tx_q->now();
        if (boundary_) {
            ++f.sh_replays;
        } else {
            ++fault_->replays;
        }
        TlpPtr clone = tlp_pool().make();
        *clone = e.tlp;
        const Tick ack_due =
            send_attempt(dir, std::move(clone), /*is_replay=*/true);
        if (ack_due != 0) {
            e.ack_base = ack_due;
        }
        ++i;
    }
    if (f.link_failed) {
        // Flush what's left: a failed direction keeps nothing alive.
        while (!f.replay.empty()) {
            const ReplayEntry& e = f.replay.front();
            if (boundary_) {
                ++f.sh_dead;
            } else {
                ++fault_->dead;
            }
            synthesize_credits(dir, e.hdr_cost, e.data_cost);
            f.replay.pop_front();
        }
    }
    arm_replay_timer(dir);
}

void PcieLink::process_dll(unsigned dir)
{
    Direction& d = dirs_[dir];
    FaultDir& f = fault_->dir[dir];
    const bool was_starved = f.replay_starved;
    const bool freed = harvest_acks(dir);
    // Clear before the kick, exactly like credit(): a still-starved
    // sender's probe inside credit_avail() re-arms below.
    f.replay_starved = false;
    if (freed || was_starved) {
        PciePort& tx = ports_[dir];
        ensure(tx.node_ != nullptr, name(), ": unattached PCIe port");
        tx.node_->credit_avail(tx.node_port_idx_);
    }
    if (!f.dll.empty() && (f.naks_pending > 0 || f.replay_starved) &&
        !f.dll_event.scheduled()) {
        d.tx_q->schedule_express(
            f.dll_event, std::max(d.tx_q->now(), f.dll.front().arrival));
    }
}

void PcieLink::replay_timer(unsigned dir)
{
    Direction& d = dirs_[dir];
    FaultDir& f = fault_->dir[dir];
    const bool was_starved = f.replay_starved;
    const bool freed = harvest_acks(dir);
    f.replay_starved = false;
    if (freed || was_starved) {
        PciePort& tx = ports_[dir];
        ensure(tx.node_ != nullptr, name(), ": unattached PCIe port");
        tx.node_->credit_avail(tx.node_port_idx_);
    }
    if (f.replay.empty()) {
        return;
    }
    const Tick due = f.replay.front().ack_base + fault_->replay_timeout;
    if (due <= d.tx_q->now()) {
        // Nothing ACKed the oldest entry in a full timeout: the receiver
        // never saw it (link-down loss, lost to a dead window) — replay
        // the whole buffer.
        do_replay(dir, f.replay.front().seq);
    }
    if (!f.replay.empty() && !f.replay_event.scheduled()) {
        const Tick next =
            f.replay.front().ack_base + fault_->replay_timeout;
        d.tx_q->schedule(f.replay_event, std::max(next, d.tx_q->now()));
    }
}

void PcieLink::retrain(unsigned dir)
{
    // Fires at a down-window end, on the transmit side's queue. The wire
    // comes back clean: drain every in-flight credit return (they belong
    // to the pre-down world) and re-arm the full advertised credits, then
    // kick the transmitter — its egress likely backed up during the
    // window. Sequence state is kept: the replay timer re-sends what the
    // down window ate, under the original sequence numbers.
    Direction& d = dirs_[dir];
    FaultDir& f = fault_->dir[dir];
    d.credit_returns.clear();
    ports_[dir].tx_hdr_credits_ = params_.hdr_credits;
    ports_[dir].tx_data_credits_ = params_.data_credit_bytes;
    if (boundary_) {
        ++f.sh_retrains;
    } else {
        ++fault_->retrains;
    }
    d.tx_starved = false;
    PciePort& tx = ports_[dir];
    ensure(tx.node_ != nullptr, name(), ": unattached PCIe port");
    tx.node_->credit_avail(tx.node_port_idx_);
    ++f.retrain_idx;
    if (f.retrain_idx < f.down.size()) {
        d.tx_q->schedule(f.retrain_event, f.down[f.retrain_idx].second);
    }
}

void PcieLink::transmit(unsigned from_side, TlpPtr tlp)
{
    if (fault_ != nullptr) {
        fault_transmit(from_side, std::move(tlp));
        return;
    }
    // dir 0 carries a->b (from side 0), dir 1 carries b->a.
    Direction& d = dirs_[from_side];

    const std::uint64_t bytes = wire_bytes(*tlp);
    const Tick start = std::max(d.tx_q->now(), d.busy_until);
    const Tick ser =
        static_cast<Tick>(static_cast<double>(bytes) * ser_ps_per_byte_);
    d.busy_until = start + ser;
    d.busy_ticks += ser;
    const Tick arrival = d.busy_until + prop_ticks_;

    if (boundary_) {
        // Cross-domain: stage on the transmit side. The arrival is at
        // least a propagation delay (>= the barrier quantum) away, so the
        // barrier that injects it always precedes the delivery window.
        d.sh_tlps += 1;
        d.sh_payload += tlp->payload_bytes();
        d.sh_wire += bytes;
        d.staged_tlps.push_back(InFlight{arrival, std::move(tlp)});
        return;
    }

    ++tlps_;
    payload_bytes_ += tlp->payload_bytes();
    wire_bytes_ += static_cast<double>(bytes);

    d.in_flight.push_back(InFlight{arrival, std::move(tlp)});
    if (!d.deliver_event.scheduled()) {
        d.rx_q->schedule_express(d.deliver_event, arrival);
    }
}

void PcieLink::deliver(unsigned dir)
{
    Direction& d = dirs_[dir];
    while (!d.in_flight.empty() &&
           d.in_flight.front().arrival <= d.rx_q->now()) {
        const Tick arrival = d.in_flight.front().arrival;
        TlpPtr tlp = std::move(d.in_flight.front().tlp);
        d.in_flight.pop_front();
        if (fault_ != nullptr && !fault_accept(dir, *tlp, arrival)) {
            continue; // discarded by the DLL; replay recovers it
        }
        PciePort& rx = ports_[1 - dir]; // dir 0 lands at end_b (side 1)
        ensure(rx.node_ != nullptr, name(), ": unattached PCIe port");
        rx.node_->recv_tlp(rx.node_port_idx_, std::move(tlp));
    }
    if (!d.in_flight.empty()) {
        d.rx_q->schedule_express(d.deliver_event,
                                 d.in_flight.front().arrival);
    }
}

void PcieLink::queue_credit_return(unsigned to_side, unsigned hdr,
                                   std::uint64_t data)
{
    // Direction index named by the side whose transmitter gets the credits.
    // Called by that direction's *receiver* (release_ingress), so the
    // clock — and in boundary mode the staging ring — is the rx side's.
    if (test_credit_leak_[to_side]) {
        return; // test hook: the peer "lost" this release
    }
    Direction& d = dirs_[to_side];
    const Tick arrival = d.rx_q->now() + prop_ticks_;
    if (boundary_) {
        d.staged_credits.push_back(CreditReturn{arrival, hdr, data});
        return;
    }
    d.credit_returns.push_back(CreditReturn{arrival, hdr, data});
    // Lazy accounting: an unstarved transmitter harvests this return the
    // next time it probes can_send(); only a starved one needs the event.
    if ((eager_credits_ || d.tx_starved) && !d.credit_event.scheduled()) {
        d.tx_q->schedule_express(d.credit_event, arrival);
    }
}

void PcieLink::harvest_credits(unsigned side)
{
    Direction& d = dirs_[side];
    while (!d.credit_returns.empty() &&
           d.credit_returns.front().arrival <= d.tx_q->now()) {
        const CreditReturn cr = d.credit_returns.front();
        d.credit_returns.pop_front();
        ports_[side].tx_hdr_credits_ += cr.hdr;
        ports_[side].tx_data_credits_ += cr.data;
    }
    if (fault_ != nullptr) {
        // A retrain re-arms full credits; a straggling release from the
        // pre-down world must not push the balance past the advertised
        // buffer.
        ports_[side].tx_hdr_credits_ =
            std::min(ports_[side].tx_hdr_credits_, params_.hdr_credits);
        ports_[side].tx_data_credits_ = std::min(
            ports_[side].tx_data_credits_, params_.data_credit_bytes);
    }
}

bool PcieLink::can_send_from(unsigned side, const Tlp& tlp)
{
    PciePort& p = ports_[side];
    if (!eager_credits_) {
        harvest_credits(side);
    }
    if (fault_ != nullptr) {
        FaultDir& f = fault_->dir[side];
        harvest_acks(side); // frees ACKed replay entries (and serves NAKs)
        if (!f.link_failed &&
            f.replay.size() >= fault_->plan.replay_buffer_tlps) {
            // Replay buffer full: back-pressure exactly like credit
            // starvation — the kick comes from the next DLL record (or
            // the replay timer, which is always armed while entries
            // exist).
            f.replay_starved = true;
            if (!f.dll.empty() && !f.dll_event.scheduled()) {
                dirs_[side].tx_q->schedule_express(
                    f.dll_event, std::max(dirs_[side].tx_q->now(),
                                          f.dll.front().arrival));
            }
            return false;
        }
    }
    if (p.tx_hdr_credits_ >= 1 &&
        p.tx_data_credits_ >= tlp.payload_bytes()) {
        return true;
    }
    if (!eager_credits_) {
        // Starved: arm the kick at the earliest in-flight return — the
        // same tick the eager model's credit event would have fired.
        Direction& d = dirs_[side];
        d.tx_starved = true;
        if (!d.credit_returns.empty() && !d.credit_event.scheduled()) {
            d.tx_q->schedule_express(d.credit_event,
                                     d.credit_returns.front().arrival);
        }
    }
    return false;
}

void PcieLink::credit(unsigned dir)
{
    Direction& d = dirs_[dir];
    const bool was_starved = d.tx_starved;
    bool granted = false;
    while (!d.credit_returns.empty() &&
           d.credit_returns.front().arrival <= d.tx_q->now()) {
        const CreditReturn cr = d.credit_returns.front();
        d.credit_returns.pop_front();
        ports_[dir].tx_hdr_credits_ += cr.hdr;
        ports_[dir].tx_data_credits_ += cr.data;
        granted = true;
    }
    if (fault_ != nullptr) {
        ports_[dir].tx_hdr_credits_ =
            std::min(ports_[dir].tx_hdr_credits_, params_.hdr_credits);
        ports_[dir].tx_data_credits_ = std::min(
            ports_[dir].tx_data_credits_, params_.data_credit_bytes);
    }
    // Clear before the kick: a still-starved sender's can_send() probe
    // inside credit_avail() re-arms the next pending arrival. The kick
    // also fires when this event granted nothing but the direction was
    // starved: a same-tick can_send() probe earlier in the batch may have
    // harvested the matured returns inline, and without the kick here the
    // sender whose wakeup those returns carried would wait forever.
    d.tx_starved = false;
    if (granted || was_starved) {
        PciePort& tx = ports_[dir];
        ensure(tx.node_ != nullptr, name(), ": unattached PCIe port");
        tx.node_->credit_avail(tx.node_port_idx_);
    }
    if (!d.credit_returns.empty() &&
        (eager_credits_ || d.tx_starved) && !d.credit_event.scheduled()) {
        d.tx_q->schedule_express(d.credit_event,
                                 d.credit_returns.front().arrival);
    }
}

void PcieLink::test_leak_credits(unsigned side)
{
    test_credit_leak_[side] = true;
    ports_[side].tx_hdr_credits_ = 0;
    ports_[side].tx_data_credits_ = 0;
    dirs_[side].credit_returns.clear();
}

void PcieLink::serialize(Ckpt& ar)
{
    for (auto& port : ports_) {
        ar.io(port.tx_hdr_credits_, port.tx_data_credits_);
    }
    for (Direction& d : dirs_) {
        // Boundary staging and stat shadows are drained by the barrier
        // flush that precedes every parallel checkpoint (and never used
        // serially), so they are not part of the format.
        ensure(d.staged_tlps.empty() && d.staged_credits.empty() &&
                   d.sh_tlps == 0,
               name(), ": checkpoint with unflushed boundary staging");
        ar.io(d.busy_until, d.busy_ticks, d.tx_starved);
        std::uint64_t n_credits = d.credit_returns.size();
        std::uint64_t n_flight = d.in_flight.size();
        ar.io(n_credits, n_flight);
        if (ar.saving()) {
            for (std::size_t i = 0; i < n_credits; ++i) {
                CreditReturn& cr = d.credit_returns[i];
                ar.io(cr.arrival, cr.hdr, cr.data);
            }
            for (std::size_t i = 0; i < n_flight; ++i) {
                InFlight& f = d.in_flight[i];
                ar.io(f.arrival);
                f.tlp->serialize(ar);
            }
        } else {
            d.credit_returns.clear();
            d.in_flight.clear();
            for (std::uint64_t i = 0; i < n_credits; ++i) {
                CreditReturn cr{};
                ar.io(cr.arrival, cr.hdr, cr.data);
                d.credit_returns.push_back(cr);
            }
            for (std::uint64_t i = 0; i < n_flight; ++i) {
                InFlight f{};
                ar.io(f.arrival);
                // Materialize into the receiving domain's pool, exactly
                // where the live TLP was drawn from (flush_boundary).
                f.tlp = d.rx_pool->make();
                f.tlp->serialize(ar);
                d.in_flight.push_back(std::move(f));
            }
        }
        d.credit_event.serialize(ar, *d.tx_q);
        d.deliver_event.serialize(ar, *d.rx_q);
    }
    if (fault_ == nullptr) {
        return; // same config => same plan presence on both sides
    }
    for (unsigned s = 0; s < 2; ++s) {
        Direction& d = dirs_[s];
        FaultDir& f = fault_->dir[s];
        ensure(f.staged_dll.empty() && f.sh_replays == 0,
               name(), ": checkpoint with unflushed DLL staging");
        f.rng.serialize(ar);
        ar.io(f.link_failed, f.next_seq, f.naks_pending, f.replay_starved,
              f.recovery_ticks, f.expect_seq, f.nak_armed);
        std::uint64_t ci = f.corrupt_idx;
        std::uint64_t ti = f.tx_down_idx;
        std::uint64_t ri = f.retrain_idx;
        std::uint64_t xi = f.rx_down_idx;
        ar.io(ci, ti, ri, xi);
        f.corrupt_idx = static_cast<std::size_t>(ci);
        f.tx_down_idx = static_cast<std::size_t>(ti);
        f.retrain_idx = static_cast<std::size_t>(ri);
        f.rx_down_idx = static_cast<std::size_t>(xi);
        std::uint64_t n_replay = f.replay.size();
        std::uint64_t n_dll = f.dll.size();
        ar.io(n_replay, n_dll);
        if (ar.saving()) {
            for (std::size_t i = 0; i < n_replay; ++i) {
                ReplayEntry& e = f.replay[i];
                ar.io(e.first_tx, e.ack_base, e.seq, e.tries, e.hdr_cost,
                      e.data_cost);
                e.tlp.serialize(ar);
            }
            for (std::size_t i = 0; i < n_dll; ++i) {
                DllRecord& rec = f.dll[i];
                ar.io(rec.arrival, rec.seq, rec.nak);
            }
        } else {
            f.replay.clear();
            f.dll.clear();
            for (std::uint64_t i = 0; i < n_replay; ++i) {
                ReplayEntry e;
                ar.io(e.first_tx, e.ack_base, e.seq, e.tries, e.hdr_cost,
                      e.data_cost);
                e.tlp.serialize(ar);
                f.replay.push_back(std::move(e));
            }
            for (std::uint64_t i = 0; i < n_dll; ++i) {
                DllRecord rec;
                ar.io(rec.arrival, rec.seq, rec.nak);
                f.dll.push_back(rec);
            }
        }
        f.dll_event.serialize(ar, *d.tx_q);
        f.replay_event.serialize(ar, *d.tx_q);
        f.retrain_event.serialize(ar, *d.tx_q);
    }
}

void PcieLink::report_occupancy(std::string& out) const
{
    const std::size_t flight =
        dirs_[0].in_flight.size() + dirs_[1].in_flight.size();
    const std::size_t replay =
        fault_ != nullptr
            ? fault_->dir[0].replay.size() + fault_->dir[1].replay.size()
            : 0;
    const bool failed =
        fault_ != nullptr &&
        (fault_->dir[0].link_failed || fault_->dir[1].link_failed);
    const bool starved = dirs_[0].tx_starved || dirs_[1].tx_starved;
    if (flight == 0 && replay == 0 && !failed && !starved) {
        return;
    }
    out += "  " + name() + ": in_flight=" + std::to_string(flight);
    if (fault_ != nullptr) {
        out += ", replay_buffered=" + std::to_string(replay);
    }
    if (failed) {
        out += ", direction latched FAILED";
    }
    if (starved) {
        out += ", tx credit-starved";
    }
    out += "\n";
}

void TlpQueue::serialize(Ckpt& ar)
{
    std::uint64_t n = q_.size();
    ar.io(n);
    if (ar.saving()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            ckpt_tlp(ar, q_[i]);
        }
    } else {
        q_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            TlpPtr tlp;
            ckpt_tlp(ar, tlp);
            q_.push_back(std::move(tlp));
        }
    }
}

} // namespace accesys::pcie
