#include "pcie/link.hh"

#include <algorithm>
#include <cstdlib>

namespace accesys::pcie {

void LinkParams::validate() const
{
    require_cfg(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8 ||
                    lanes == 16 || lanes == 32,
                "PCIe lane count must be a standard width (got ", lanes, ")");
    require_cfg(lane_gbps > 0, "lane speed must be positive");
    require_cfg(hdr_credits > 0 && data_credit_bytes > 0,
                "flow-control credits must be non-zero");
}

LinkParams LinkParams::from_target_gbps(double gbps, unsigned lanes, Gen gen)
{
    require_cfg(gbps > 0, "target bandwidth must be positive");
    LinkParams p;
    p.lanes = lanes;
    p.gen = gen;
    p.lane_gbps = gbps * 8.0 / (lanes * encoding_efficiency(gen));
    return p;
}

void PciePort::attach(PcieNode& node, unsigned node_port_idx)
{
    ensure(node_ == nullptr, "PCIe port attached twice");
    node_ = &node;
    node_port_idx_ = node_port_idx;
}

bool PciePort::can_send(const Tlp& tlp) const
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    return link_->can_send_from(side_, tlp);
}

unsigned PciePort::hdr_credits() const
{
    if (link_ != nullptr) {
        link_->harvest_credits(side_);
    }
    return tx_hdr_credits_;
}

std::uint64_t PciePort::data_credits() const
{
    if (link_ != nullptr) {
        link_->harvest_credits(side_);
    }
    return tx_data_credits_;
}

void PciePort::send(TlpPtr tlp)
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    // Senders probe can_send() immediately before sending (it harvests any
    // matured lazy credit returns), so the guard here checks the already
    // harvested balance instead of paying a second harvest walk per TLP.
    ensure(tx_hdr_credits_ >= 1 &&
               tx_data_credits_ >= tlp->payload_bytes(),
           "PCIe send without credits");
    tx_hdr_credits_ -= 1;
    tx_data_credits_ -= tlp->payload_bytes();
    link_->transmit(side_, std::move(tlp));
}

void PciePort::release_ingress(std::uint32_t payload_bytes)
{
    ensure(link_ != nullptr, "PCIe port not part of a link");
    // Credits freed on our ingress return to the peer's transmitter.
    link_->queue_credit_return(1 - side_, 1, payload_bytes);
}

PcieLink::PcieLink(Simulator& sim, std::string name, const LinkParams& params)
    : SimObject(sim, std::move(name)), params_(params)
{
    params_.validate();
    eager_credits_ = std::getenv("ACCESYS_EAGER_CREDITS") != nullptr;
    ser_ps_per_byte_ = 1000.0 / params_.effective_gbps();
    prop_ticks_ = ticks_from_ns(params_.propagation_delay_ns);
    for (unsigned side = 0; side < 2; ++side) {
        ports_[side].link_ = this;
        ports_[side].side_ = side;
        ports_[side].tx_hdr_credits_ = params_.hdr_credits;
        ports_[side].tx_data_credits_ = params_.data_credit_bytes;
    }
    dirs_[0].deliver_event.set_name(this->name() + ".deliver_ab");
    dirs_[0].deliver_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->deliver(0); }, this);
    dirs_[1].deliver_event.set_name(this->name() + ".deliver_ba");
    dirs_[1].deliver_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->deliver(1); }, this);
    dirs_[0].credit_event.set_name(this->name() + ".credit_ab");
    dirs_[0].credit_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->credit(0); }, this);
    dirs_[1].credit_event.set_name(this->name() + ".credit_ba");
    dirs_[1].credit_event.set_raw_callback(
        [](void* self) { static_cast<PcieLink*>(self)->credit(1); }, this);
}

double PcieLink::utilization(unsigned dir) const
{
    const Tick elapsed = now();
    return elapsed == 0 ? 0.0
                        : static_cast<double>(dirs_[dir].busy_ticks) /
                              static_cast<double>(elapsed);
}

void PcieLink::transmit(unsigned from_side, TlpPtr tlp)
{
    // dir 0 carries a->b (from side 0), dir 1 carries b->a.
    Direction& d = dirs_[from_side];

    const std::uint64_t bytes = wire_bytes(*tlp);
    const Tick start = std::max(now(), d.busy_until);
    const Tick ser =
        static_cast<Tick>(static_cast<double>(bytes) * ser_ps_per_byte_);
    d.busy_until = start + ser;
    d.busy_ticks += ser;
    const Tick arrival = d.busy_until + prop_ticks_;

    ++tlps_;
    payload_bytes_ += tlp->payload_bytes();
    wire_bytes_ += static_cast<double>(bytes);

    d.in_flight.push_back(InFlight{arrival, std::move(tlp)});
    if (!d.deliver_event.scheduled()) {
        sim().queue().schedule_express(d.deliver_event, arrival);
    }
}

void PcieLink::deliver(unsigned dir)
{
    Direction& d = dirs_[dir];
    while (!d.in_flight.empty() && d.in_flight.front().arrival <= now()) {
        TlpPtr tlp = std::move(d.in_flight.front().tlp);
        d.in_flight.pop_front();
        PciePort& rx = ports_[1 - dir]; // dir 0 lands at end_b (side 1)
        ensure(rx.node_ != nullptr, name(), ": unattached PCIe port");
        rx.node_->recv_tlp(rx.node_port_idx_, std::move(tlp));
    }
    if (!d.in_flight.empty()) {
        sim().queue().schedule_express(d.deliver_event,
                                       d.in_flight.front().arrival);
    }
}

void PcieLink::queue_credit_return(unsigned to_side, unsigned hdr,
                                   std::uint64_t data)
{
    // Direction index named by the side whose transmitter gets the credits.
    Direction& d = dirs_[to_side];
    const Tick arrival = now() + prop_ticks_;
    d.credit_returns.push_back(CreditReturn{arrival, hdr, data});
    // Lazy accounting: an unstarved transmitter harvests this return the
    // next time it probes can_send(); only a starved one needs the event.
    if ((eager_credits_ || d.tx_starved) && !d.credit_event.scheduled()) {
        sim().queue().schedule_express(d.credit_event, arrival);
    }
}

void PcieLink::harvest_credits(unsigned side)
{
    Direction& d = dirs_[side];
    while (!d.credit_returns.empty() &&
           d.credit_returns.front().arrival <= now()) {
        const CreditReturn cr = d.credit_returns.front();
        d.credit_returns.pop_front();
        ports_[side].tx_hdr_credits_ += cr.hdr;
        ports_[side].tx_data_credits_ += cr.data;
    }
}

bool PcieLink::can_send_from(unsigned side, const Tlp& tlp)
{
    PciePort& p = ports_[side];
    if (!eager_credits_) {
        harvest_credits(side);
    }
    if (p.tx_hdr_credits_ >= 1 &&
        p.tx_data_credits_ >= tlp.payload_bytes()) {
        return true;
    }
    if (!eager_credits_) {
        // Starved: arm the kick at the earliest in-flight return — the
        // same tick the eager model's credit event would have fired.
        Direction& d = dirs_[side];
        d.tx_starved = true;
        if (!d.credit_returns.empty() && !d.credit_event.scheduled()) {
            sim().queue().schedule_express(
                d.credit_event, d.credit_returns.front().arrival);
        }
    }
    return false;
}

void PcieLink::credit(unsigned dir)
{
    Direction& d = dirs_[dir];
    const bool was_starved = d.tx_starved;
    bool granted = false;
    while (!d.credit_returns.empty() &&
           d.credit_returns.front().arrival <= now()) {
        const CreditReturn cr = d.credit_returns.front();
        d.credit_returns.pop_front();
        ports_[dir].tx_hdr_credits_ += cr.hdr;
        ports_[dir].tx_data_credits_ += cr.data;
        granted = true;
    }
    // Clear before the kick: a still-starved sender's can_send() probe
    // inside credit_avail() re-arms the next pending arrival. The kick
    // also fires when this event granted nothing but the direction was
    // starved: a same-tick can_send() probe earlier in the batch may have
    // harvested the matured returns inline, and without the kick here the
    // sender whose wakeup those returns carried would wait forever.
    d.tx_starved = false;
    if (granted || was_starved) {
        PciePort& tx = ports_[dir];
        ensure(tx.node_ != nullptr, name(), ": unattached PCIe port");
        tx.node_->credit_avail(tx.node_port_idx_);
    }
    if (!d.credit_returns.empty() &&
        (eager_credits_ || d.tx_starved) && !d.credit_event.scheduled()) {
        sim().queue().schedule_express(
            d.credit_event, d.credit_returns.front().arrival);
    }
}

} // namespace accesys::pcie
