// PCIe Root Complex: the host-side bridge between the PCIe hierarchy and the
// coherent memory fabric.
//
// Inbound (device -> host):
//   * MRd TLPs are accepted (up to `max_inbound_reads` concurrently),
//     split into `host_split_bytes` fabric reads (the RCB-style split that
//     keeps cache-line-sized requests on the coherent side), and answered
//     with in-order CplD TLPs of at most `max_payload_bytes` each.
//   * MWr TLPs are split into posted fabric writes.
//   * Inbound requests are marked `needs_translation` when the device
//     operates on virtual addresses; the SMMU on the fabric path translates.
//
// Outbound (CPU -> device):
//   * Fabric requests arriving on `mmio_side()` (routed there by the MemBus
//     BAR range) become MRd/MWr TLPs; MMIO writes are posted, reads wait
//     for the device completion (bounded tag pool).
//
// Every TLP is charged `latency_ns` (paper Table II: 150 ns) in a
// store-and-forward stage whose head-of-line stalls — together with the
// ingress credits held until service — provide the back-pressure behaviour
// the packet-size study (Fig. 4) measures.
#pragma once

#include <array>
#include <vector>

#include "mem/port.hh"
#include "pcie/link.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::pcie {

struct RcParams {
    double latency_ns = 150.0;
    std::uint32_t host_split_bytes = 64;
    std::uint32_t max_payload_bytes = 256;
    std::size_t max_inbound_reads = 64;
    std::size_t mem_queue_capacity = 128;
    std::size_t mmio_tags = 32;
    /// Devices issue virtual addresses (SMMU present on the fabric path).
    bool device_addresses_virtual = true;
    /// DM access mode: all inbound DMA bypasses the cache hierarchy.
    bool inbound_uncacheable = false;

    /// Completion timeout for outbound (CPU MMIO) reads; 0 (the default)
    /// disables the watchdog. core::System propagates
    /// FaultPlan::completion_timeout_ns here.
    double completion_timeout_ns = 0.0;
    /// Timed-out MMIO reads are re-issued with exponential backoff this
    /// many times, then master-aborted: the fabric gets an all-ones
    /// response so the CPU is never wedged on a dead device.
    unsigned completion_max_retries = 3;

    void validate() const;
};

class RootComplex final : public SimObject,
                          public PcieNode,
                          private mem::Requestor,
                          private mem::Responder {
  public:
    RootComplex(Simulator& sim, std::string name, const RcParams& params);

    /// Connect the link end that faces the switch/device hierarchy.
    void connect_pcie(PciePort& port);

    /// Fabric-facing request port (DMA traffic into the memory system).
    [[nodiscard]] mem::RequestPort& mem_side() noexcept { return mem_port_; }

    /// Fabric-facing response port (CPU MMIO to device BARs).
    [[nodiscard]] mem::ResponsePort& mmio_side() noexcept
    {
        return mmio_port_;
    }

    // PcieNode
    void recv_tlp(unsigned port_idx, TlpPtr tlp) override;
    void credit_avail(unsigned port_idx) override;

    /// Checkpoint/restore inbound read slots, MMIO tag state, the delay
    /// stage and all staging queues.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    // mem::Requestor (mem_side)
    bool recv_resp(mem::PacketPtr& pkt) override;
    void retry_req() override { mem_q_.retry(); }

    // mem::Responder (mmio_side)
    bool recv_req(mem::PacketPtr& pkt) override;
    void retry_resp() override { mmio_resp_q_.retry(); }

    /// One in-service inbound MRd. Lives in a fixed slot pool
    /// (max_inbound_reads entries) with a fixed chunk bitmap, so servicing
    /// reads allocates nothing. kMaxReadChunks bounds length/host_split.
    struct InboundRead {
        static constexpr std::uint32_t kMaxReadChunks = 256;

        std::uint32_t key = 0; ///< (requester, tag) pair, see read_key()
        bool live = false;
        Addr addr = 0;
        std::uint32_t size = 0;
        std::uint8_t tag = 0;
        std::uint16_t requester = 0;
        std::uint32_t chunks = 0;
        std::array<std::uint64_t, kMaxReadChunks / 64> chunk_done{};
        std::uint32_t emitted = 0; ///< bytes already completed, in order
        /// Chunks [0, done_prefix) are all done. Completion emission is
        /// strictly in order, so span completeness is one compare against
        /// the prefix instead of a per-arrival rescan of the span's bits;
        /// out-of-order arrivals park in the bitmap until the hole fills.
        std::uint32_t done_prefix = 0;
        /// Any fabric response for this read carried the poison flag (e.g.
        /// an SMMU translation fault); every remaining CplD is stamped
        /// poisoned so the requester contains instead of consuming.
        bool poisoned = false;

        [[nodiscard]] bool chunk_is_done(std::uint32_t i) const noexcept
        {
            return (chunk_done[i / 64] >> (i % 64)) & 1;
        }
        void mark_chunk_done(std::uint32_t i) noexcept
        {
            chunk_done[i / 64] |= std::uint64_t{1} << (i % 64);
            while (done_prefix < chunks && chunk_is_done(done_prefix)) {
                ++done_prefix;
            }
        }
    };

    /// Slot index of the live inbound read with `key`, or a negative value.
    /// O(1): keys are (requester << 8 | tag), a tiny dense space, so a
    /// direct-map key->slot table replaces the old linear scan over the
    /// fat InboundRead records (which cost a cache line per slot probed,
    /// once per response chunk).
    [[nodiscard]] std::ptrdiff_t find_inbound_slot(std::uint32_t key) const
    {
        return key < slot_of_key_.size() ? slot_of_key_[key] : -1;
    }

    /// Lowest free slot via the free bitmap (same pick order as the old
    /// first-not-live scan); negative when exhausted.
    [[nodiscard]] std::ptrdiff_t lowest_free_slot() const
    {
        for (std::size_t w = 0; w < slot_free_bits_.size(); ++w) {
            if (slot_free_bits_[w] != 0) {
                return static_cast<std::ptrdiff_t>(
                    w * 64 + static_cast<unsigned>(
                                 __builtin_ctzll(slot_free_bits_[w])));
            }
        }
        return -1;
    }

    [[nodiscard]] InboundRead* find_inbound_read(std::uint32_t key)
    {
        const std::ptrdiff_t slot = find_inbound_slot(key);
        return slot < 0 ? nullptr
                        : &inbound_reads_[static_cast<std::size_t>(slot)];
    }

    void process_delayed();
    void service_read(Tlp& tlp);
    void service_write(Tlp& tlp);
    void service_completion(TlpPtr tlp);
    void advance_completions(std::size_t slot);
    void check_mmio_timeouts();

    /// MMIO completion-timeout state + fault stats, allocated only when
    /// the watchdog is enabled so clean-run stat dumps are unchanged.
    struct MmioWatchdog {
        MmioWatchdog(stats::Group& g, std::size_t tags)
            : timeouts(g, "mmio_timeouts",
                       "MMIO read completion timeouts observed"),
              retries(g, "mmio_retries",
                      "MMIO MRd TLPs re-issued after a timeout"),
              aborts(g, "mmio_aborts",
                     "MMIO reads master-aborted (all-ones response)"),
              stray(g, "stray_completions",
                    "late CplDs for already-retired MMIO tags (dropped)"),
              dup_reads(g, "dup_inbound_reads",
                        "duplicate inbound MRds from requester completion-"
                        "timeout retries (dropped; original still live)"),
              deadline(tags, 0),
              tries(tags, 0)
        {
        }
        stats::Scalar timeouts;
        stats::Scalar retries;
        stats::Scalar aborts;
        stats::Scalar stray;
        stats::Scalar dup_reads;
        std::vector<Tick> deadline;    ///< per MMIO tag
        std::vector<unsigned> tries;   ///< re-issues per tag
    };

    // Inbound requests are split at host_split_bytes-aligned boundaries
    // (unaligned DMA may yield short head/tail chunks).
    [[nodiscard]] std::uint32_t split_span(Addr base, std::uint32_t len,
                                           std::uint32_t off) const
    {
        // host_split_bytes is pow2: modulo is a mask (split_mask_ cached).
        const std::uint32_t align = params_.host_split_bytes;
        const auto to_boundary = static_cast<std::uint32_t>(
            align - ((base + off) & split_mask_));
        return std::min(to_boundary, len - off);
    }
    [[nodiscard]] std::uint32_t split_count(Addr base,
                                            std::uint32_t len) const
    {
        const std::uint32_t align = params_.host_split_bytes;
        return static_cast<std::uint32_t>(
            (align_up(base + len, align) - align_down(base, align)) >>
            split_shift_);
    }
    [[nodiscard]] std::uint32_t chunk_index(Addr base,
                                            std::uint32_t off) const
    {
        const std::uint32_t align = params_.host_split_bytes;
        return static_cast<std::uint32_t>(
            (align_down(base + off, align) - align_down(base, align)) >>
            split_shift_);
    }
    [[nodiscard]] static std::uint32_t read_key(std::uint16_t requester,
                                                std::uint8_t tag)
    {
        return (static_cast<std::uint32_t>(requester) << 8) | tag;
    }

    RcParams params_;
    Tick latency_ticks_ = 0; ///< precomputed ticks_from_ns(latency_ns)
    unsigned split_shift_ = 0;       ///< log2(host_split_bytes)
    std::uint64_t split_mask_ = 0;   ///< host_split_bytes - 1
    PciePort* pcie_port_ = nullptr;
    std::unique_ptr<TlpQueue> egress_;

    mem::RequestPort mem_port_;
    mem::ResponsePort mmio_port_;
    mem::PacketQueue mem_q_;
    mem::PacketQueue mmio_resp_q_;

    struct Delayed {
        Tick ready = 0;
        TlpPtr tlp;
    };
    RingBuffer<Delayed> delay_q_;
    Event process_event_{"", nullptr};

    std::vector<InboundRead> inbound_reads_; ///< fixed slot pool
    /// Direct-map read_key() -> slot index (-1 = no live read). Grown on
    /// first use of a key; the key space is (num_devices << 8) entries.
    std::vector<std::int32_t> slot_of_key_;
    /// Bitmap of free slots (bit set = free); lowest-set-bit allocation
    /// preserves the old first-free pick order.
    std::vector<std::uint64_t> slot_free_bits_;
    std::size_t inbound_live_ = 0;
    std::vector<mem::PacketPtr> mmio_pending_; ///< indexed by MMIO tag
    std::vector<std::uint8_t> mmio_tag_free_;
    std::uint32_t requestor_id_;
    mem::PacketPool* pkt_pool_ = nullptr; ///< resolved once (chunk loops)
    TlpPool* tlp_pool_ = nullptr;
    bool mmio_blocked_upstream_ = false;

    Tick cpl_timeout_ticks_ = 0; ///< nonzero = MMIO watchdog armed
    Event cpl_timeout_event_{"", nullptr};
    std::unique_ptr<MmioWatchdog> watchdog_;

    stats::Scalar inbound_read_tlps_{stat_group(), "inbound_read_tlps",
                                     "device MRd TLPs serviced"};
    stats::Scalar inbound_write_tlps_{stat_group(), "inbound_write_tlps",
                                      "device MWr TLPs serviced"};
    stats::Scalar completions_sent_{stat_group(), "completions_sent",
                                    "CplD TLPs generated"};
    stats::Scalar mmio_reads_{stat_group(), "mmio_reads",
                              "CPU reads forwarded to devices"};
    stats::Scalar mmio_writes_{stat_group(), "mmio_writes",
                               "CPU writes forwarded to devices"};
    stats::Scalar hol_stalls_{stat_group(), "hol_stalls",
                              "head-of-line stalls in the service stage"};
};

} // namespace accesys::pcie
