#include "pcie/switch.hh"

#include "sim/serialize.hh"

namespace accesys::pcie {

PcieSwitch::PcieSwitch(Simulator& sim, std::string name,
                       const SwitchParams& params)
    : SimObject(sim, std::move(name)), params_(params)
{
    latency_ticks_ = ticks_from_ns(params_.latency_ns);
    egress_.resize(1); // slot 0 reserved for the upstream port
    forward_event_.set_name(this->name() + ".forward");
    forward_event_.set_raw_callback(
        [](void* self) { static_cast<PcieSwitch*>(self)->forward_delayed(); },
        this);
}

void PcieSwitch::forward_delayed()
{
    while (!delay_q_.empty() && delay_q_.front().ready <= now()) {
        Delayed d = std::move(delay_q_.front());
        delay_q_.pop_front();
        const unsigned out = route(*d.tlp);
        if (out == 0) {
            ++upstream_tlps_;
        } else {
            ++downstream_tlps_;
        }
        Egress& e = egress_[out];
        ensure(e.port != nullptr, name(), ": egress port not connected");
        // Uncongested fast path: nothing staged ahead and credits ready —
        // forward without the ring round trip (order-identical: empty queue).
        if (e.q.empty() && e.port->can_send(*d.tlp)) {
            const std::uint32_t cost = d.tlp->payload_bytes();
            e.port->send(std::move(d.tlp));
            ensure(egress_[d.from].port != nullptr, name(),
                   ": ingress port vanished");
            egress_[d.from].port->release_ingress(cost);
            ++forwarded_;
        } else {
            e.q.push_back(Egress::Staged{std::move(d.tlp), d.from});
            kick(out);
        }
    }
    if (!delay_q_.empty()) {
        eq().schedule_express(forward_event_,
                                       delay_q_.front().ready);
    }
}

void PcieSwitch::set_upstream(PciePort& port)
{
    ensure(egress_[0].port == nullptr, name(), ": upstream already set");
    egress_[0].port = &port;
    port.attach(*this, 0);
}

void PcieSwitch::add_downstream(PciePort& port,
                                std::vector<mem::AddrRange> bars,
                                std::uint16_t device_id)
{
    add_downstream(port, std::move(bars),
                   std::vector<std::uint16_t>{device_id});
}

void PcieSwitch::add_downstream(PciePort& port,
                                std::vector<mem::AddrRange> bars,
                                const std::vector<std::uint16_t>& device_ids)
{
    require_cfg(!device_ids.empty(), name(),
                ": downstream port needs at least one requester id");
    // Validate the whole list before touching by_device_, so a rejected
    // call cannot leave routes to a never-created egress slot behind.
    for (std::size_t i = 0; i < device_ids.size(); ++i) {
        const std::uint16_t id = device_ids[i];
        require_cfg(id != 0, name(),
                    ": device id 0 is reserved for the host");
        require_cfg(egress_for_device(id) == nullptr, name(),
                    ": requester id ", id,
                    " already claimed by another downstream port");
        for (std::size_t j = 0; j < i; ++j) {
            require_cfg(device_ids[j] != id, name(), ": requester id ", id,
                        " listed twice for one downstream port");
        }
    }
    // Routing (and its one-entry memo) assumes downstream BARs are
    // disjoint; an overlap would make first-match order — and thus the
    // chosen port — depend on registration or traffic history.
    {
        std::vector<mem::AddrRange> all;
        for (const Downstream& d : downstream_) {
            all.insert(all.end(), d.bars.begin(), d.bars.end());
        }
        all.insert(all.end(), bars.begin(), bars.end());
        mem::check_disjoint(all);
    }
    const auto idx = static_cast<unsigned>(egress_.size());
    for (const std::uint16_t id : device_ids) {
        by_device_.emplace_back(id, idx);
    }
    egress_.emplace_back();
    egress_.back().port = &port;
    downstream_.push_back(Downstream{std::move(bars), device_ids});
    // Drop any memoised BAR answer taken before this port existed (ranges
    // are checked disjoint above, but the memo must not outlive a
    // topology change — see test_pcie_fabric BarMemo tests).
    last_bar_out_ = 0;
    port.attach(*this, idx);
}

unsigned PcieSwitch::route(const Tlp& tlp) const
{
    if (tlp.type == TlpType::completion) {
        if (tlp.requester == 0) {
            return 0;
        }
        const unsigned* idx = egress_for_device(tlp.requester);
        ensure(idx != nullptr, name(), ": completion for unknown device ",
               tlp.requester);
        return *idx;
    }
    const std::uint32_t span = tlp.length == 0 ? 1 : tlp.length;
    if (last_bar_out_ != 0 && last_bar_.contains(tlp.addr, span)) {
        return last_bar_out_;
    }
    for (std::size_t i = 0; i < downstream_.size(); ++i) {
        for (const auto& bar : downstream_[i].bars) {
            if (bar.contains(tlp.addr, span)) {
                last_bar_ = bar;
                last_bar_out_ = static_cast<unsigned>(i + 1);
                return last_bar_out_;
            }
        }
    }
    return 0; // host memory
}

void PcieSwitch::recv_tlp(unsigned port_idx, TlpPtr tlp)
{
    // Store-and-forward: the TLP is only routed after the switch latency.
    const Tick ready = now() + latency_ticks_;
    delay_q_.push_back(Delayed{ready, std::move(tlp), port_idx});
    if (!forward_event_.scheduled()) {
        eq().schedule_express(forward_event_, ready);
    }
}

void PcieSwitch::credit_avail(unsigned port_idx)
{
    kick(port_idx);
}

void PcieSwitch::kick(unsigned egress_idx)
{
    Egress& e = egress_[egress_idx];
    ensure(e.port != nullptr, name(), ": egress port not connected");
    while (!e.q.empty() && e.port->can_send(*e.q.front().tlp)) {
        Egress::Staged staged = std::move(e.q.front());
        e.q.pop_front();
        const std::uint32_t cost = staged.tlp->payload_bytes();
        e.port->send(std::move(staged.tlp));
        // Departure frees our ingress buffer for the port it arrived on.
        ensure(egress_[staged.from].port != nullptr, name(),
               ": ingress port vanished");
        egress_[staged.from].port->release_ingress(cost);
        ++forwarded_;
    }
}

void PcieSwitch::serialize(Ckpt& ar)
{
    std::uint64_t n_delay = delay_q_.size();
    ar.io(n_delay);
    if (ar.loading()) {
        delay_q_.clear();
    }
    for (std::uint64_t i = 0; i < n_delay; ++i) {
        if (ar.saving()) {
            Delayed& d = delay_q_[i];
            ar.io(d.ready, d.from);
            ckpt_tlp(ar, d.tlp);
        } else {
            Delayed d;
            ar.io(d.ready, d.from);
            ckpt_tlp(ar, d.tlp);
            delay_q_.push_back(std::move(d));
        }
    }

    std::uint64_t n_egress = egress_.size();
    ar.io(n_egress);
    ensure(n_egress == egress_.size(), name(),
           ": port count changed across checkpoint");
    for (Egress& e : egress_) {
        std::uint64_t n_staged = e.q.size();
        ar.io(n_staged);
        if (ar.loading()) {
            e.q.clear();
        }
        for (std::uint64_t i = 0; i < n_staged; ++i) {
            if (ar.saving()) {
                Egress::Staged& s = e.q[i];
                ar.io(s.from);
                ckpt_tlp(ar, s.tlp);
            } else {
                Egress::Staged s;
                ar.io(s.from);
                ckpt_tlp(ar, s.tlp);
                e.q.push_back(std::move(s));
            }
        }
    }
    if (ar.loading()) {
        last_bar_out_ = 0; // pure routing memo
    }
    forward_event_.serialize(ar, eq());
}

void PcieSwitch::report_occupancy(std::string& out) const
{
    std::size_t staged = 0;
    for (const Egress& e : egress_) {
        staged += e.q.size();
    }
    if (delay_q_.empty() && staged == 0) {
        return;
    }
    out += "  " + name() + ": delayed=" + std::to_string(delay_q_.size()) +
           ", egress_staged=" + std::to_string(staged) + "\n";
}

} // namespace accesys::pcie
