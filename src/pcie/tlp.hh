// Transaction Layer Packets (TLPs) and PCIe generation/encoding helpers.
//
// Like mem::Packet, TLPs are pooled: the make_* factories draw from
// `TlpPool::global()` and `TlpPtr`'s deleter recycles instead of freeing,
// so steady-state PCIe traffic performs zero heap allocation. The small
// functional payload (MMIO register values) lives in a fixed inline buffer;
// bulk DMA data never rides in TLPs (it lives in the global BackingStore —
// see the timing/functional split note on `Tlp::data`).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys {
class Ckpt;
}

namespace accesys::pcie {

/// Raw post-send callback carried alongside a staged TLP: `fn(ctx, arg)`.
/// POD on purpose — egress queues copy these through recycled ring slots,
/// and binding a context pointer instead of a capturing std::function keeps
/// the per-TLP staging path allocation-free.
struct SentHook {
    void (*fn)(void*, std::uint32_t) = nullptr;
    void* ctx = nullptr;
    std::uint32_t arg = 0;

    explicit operator bool() const noexcept { return fn != nullptr; }
    void operator()() const { fn(ctx, arg); }
};

/// PCIe generation: determines line encoding efficiency.
enum class Gen : std::uint8_t {
    gen1, ///< 2.5 GT/s class, 8b/10b
    gen2, ///< 5 GT/s class, 8b/10b
    gen3, ///< 8 GT/s class, 128b/130b
    gen4,
    gen5,
    gen6, ///< PAM4/FLIT; efficiency approximated as 242/256
};

[[nodiscard]] constexpr double encoding_efficiency(Gen g)
{
    switch (g) {
    case Gen::gen1:
    case Gen::gen2:
        return 0.8; // 8b/10b
    case Gen::gen3:
    case Gen::gen4:
    case Gen::gen5:
        return 128.0 / 130.0;
    case Gen::gen6:
        return 242.0 / 256.0; // FLIT-mode approximation
    }
    return 1.0;
}

[[nodiscard]] constexpr const char* to_string(Gen g)
{
    switch (g) {
    case Gen::gen1: return "Gen1";
    case Gen::gen2: return "Gen2";
    case Gen::gen3: return "Gen3";
    case Gen::gen4: return "Gen4";
    case Gen::gen5: return "Gen5";
    case Gen::gen6: return "Gen6";
    }
    return "?";
}

enum class TlpType : std::uint8_t {
    mem_read,   ///< MRd — non-posted, expects completion(s) with data
    mem_write,  ///< MWr — posted
    completion, ///< CplD — carries read data back to the requester
};

[[nodiscard]] constexpr const char* to_string(TlpType t)
{
    switch (t) {
    case TlpType::mem_read: return "MRd";
    case TlpType::mem_write: return "MWr";
    case TlpType::completion: return "CplD";
    }
    return "?";
}

class TlpPool;

/// One transaction-layer packet.
///
/// `length` is the payload byte count for MWr/CplD and the *requested* byte
/// count for MRd (which carries no payload on the wire). Completions for one
/// MRd may be split; `byte_offset`/`is_last` let the requester reassemble.
struct Tlp {
    /// Largest inline functional payload (register traffic is 8 bytes).
    static constexpr std::size_t kMaxInlineData = 16;

    Tlp() = default;
    // Copies are value snapshots: they never inherit the owning-pool link,
    // so a copied TLP is plain heap/stack data.
    Tlp(const Tlp& o)
        : type(o.type),
          addr(o.addr),
          length(o.length),
          tag(o.tag),
          requester(o.requester),
          byte_offset(o.byte_offset),
          is_last(o.is_last),
          dl_seq(o.dl_seq),
          dl_corrupt(o.dl_corrupt),
          poisoned(o.poisoned),
          data_size_(o.data_size_),
          data_(o.data_)
    {
    }
    Tlp& operator=(const Tlp& o)
    {
        type = o.type;
        addr = o.addr;
        length = o.length;
        tag = o.tag;
        requester = o.requester;
        byte_offset = o.byte_offset;
        is_last = o.is_last;
        dl_seq = o.dl_seq;
        dl_corrupt = o.dl_corrupt;
        poisoned = o.poisoned;
        data_size_ = o.data_size_;
        data_ = o.data_;
        return *this; // pool_ intentionally untouched
    }

    TlpType type = TlpType::mem_read;
    Addr addr = 0;               ///< target address (MRd/MWr); 0 for CplD
    std::uint32_t length = 0;
    std::uint8_t tag = 0;        ///< transaction tag (MRd and its CplDs)
    std::uint16_t requester = 0; ///< requester id (endpoint/port number)
    std::uint32_t byte_offset = 0; ///< CplD: offset of this chunk in the request
    bool is_last = true;           ///< CplD: final completion of the request

    // --- data-link layer (fault model only; untouched on clean links) ------
    /// Per-direction DLL sequence number, stamped by PcieLink::transmit
    /// when a fault plan is active (the receiver drops out-of-sequence
    /// TLPs and NAKs for replay).
    std::uint64_t dl_seq = 0;
    /// Injected transmission error: the receiving link end discards this
    /// TLP (as a failed LCRC would) instead of delivering it.
    bool dl_corrupt = false;
    /// EP/completer poison bit (fault model only): the payload is known
    /// bad. Consumers must contain it — count and fail the transaction —
    /// never copy the data through.
    bool poisoned = false;

    /// True when the TLP type carries payload bytes on the wire.
    [[nodiscard]] bool has_payload() const noexcept
    {
        return type != TlpType::mem_read;
    }

    /// Wire payload footprint in bytes (`length` for MWr/CplD, 0 for MRd).
    [[nodiscard]] std::uint32_t payload_bytes() const noexcept
    {
        return has_payload() ? length : 0;
    }

    // --- functional data (MMIO register traffic only) ----------------------
    // DMA data stays in the global BackingStore (see DESIGN.md on the
    // timing/functional split); only small register values ride inline.
    [[nodiscard]] bool has_data() const noexcept { return data_size_ != 0; }
    [[nodiscard]] const std::uint8_t* data() const noexcept
    {
        return data_.data();
    }
    [[nodiscard]] std::uint32_t data_size() const noexcept
    {
        return data_size_;
    }
    void set_data(const void* bytes, std::size_t n)
    {
        ensure(n <= kMaxInlineData, "TLP functional payload too large (", n,
               " > ", kMaxInlineData, ")");
        std::memcpy(data_.data(), bytes, n);
        data_size_ = static_cast<std::uint8_t>(n);
    }

    [[nodiscard]] std::string describe() const;

    /// Checkpoint/restore every field except the owning-pool link (the
    /// materializing pool stamps itself; see ckpt_tlp below).
    void serialize(Ckpt& ar);

  private:
    friend class TlpPool;
    friend struct TlpDeleter;

    /// Reset every field for reuse from a pool free list (keeps pool_).
    void reinit() noexcept
    {
        type = TlpType::mem_read;
        addr = 0;
        length = 0;
        tag = 0;
        requester = 0;
        byte_offset = 0;
        is_last = true;
        dl_seq = 0;
        dl_corrupt = false;
        poisoned = false;
        data_size_ = 0;
    }

    TlpPool* pool_ = nullptr; ///< owning pool; null = plain heap/stack
    std::uint8_t data_size_ = 0;
    std::array<std::uint8_t, kMaxInlineData> data_{};
};

/// Pool-aware deleter: returns pooled TLPs to their pool, frees the rest.
struct TlpDeleter {
    void operator()(Tlp* tlp) const noexcept;
};

using TlpPtr = std::unique_ptr<Tlp, TlpDeleter>;

/// Free-list arena for TLPs; same contract as mem::PacketPool (must outlive
/// its TLPs, not thread-safe).
class TlpPool {
  public:
    TlpPool() = default;
    ~TlpPool();
    TlpPool(const TlpPool&) = delete;
    TlpPool& operator=(const TlpPool&) = delete;

    [[nodiscard]] TlpPtr make()
    {
        ++acquires_total_;
        if (free_.empty()) {
            ++allocs_total_;
            lifetime_allocs_.fetch_add(1, std::memory_order_relaxed);
            Tlp* t = new Tlp();
            t->pool_ = this;
            return TlpPtr(t);
        }
        Tlp* t = free_.back();
        free_.pop_back();
        t->reinit(); // full field reset for determinism across reuse
        return TlpPtr(t);
    }

    [[nodiscard]] TlpPtr make_mem_read(Addr addr, std::uint32_t length,
                                       std::uint8_t tag,
                                       std::uint16_t requester)
    {
        TlpPtr t = make();
        t->type = TlpType::mem_read;
        t->addr = addr;
        t->length = length;
        t->tag = tag;
        t->requester = requester;
        return t;
    }

    [[nodiscard]] TlpPtr make_mem_write(Addr addr, std::uint32_t length,
                                        std::uint16_t requester)
    {
        TlpPtr t = make();
        t->type = TlpType::mem_write;
        t->addr = addr;
        t->length = length;
        t->requester = requester;
        return t;
    }

    [[nodiscard]] TlpPtr make_completion(std::uint32_t length,
                                         std::uint8_t tag,
                                         std::uint16_t requester,
                                         std::uint32_t byte_offset,
                                         bool is_last)
    {
        TlpPtr t = make();
        t->type = TlpType::completion;
        t->length = length;
        t->tag = tag;
        t->requester = requester;
        t->byte_offset = byte_offset;
        t->is_last = is_last;
        return t;
    }

    /// Checkpoint/restore the pool counters (see
    /// mem::PacketPool::serialize_counters for the ordering contract).
    void serialize_counters(Ckpt& ar);

    [[nodiscard]] std::uint64_t allocs_total() const noexcept
    {
        return allocs_total_;
    }
    [[nodiscard]] std::uint64_t acquires_total() const noexcept
    {
        return acquires_total_;
    }
    [[nodiscard]] std::uint64_t recycles_total() const noexcept
    {
        return recycles_total_;
    }
    [[nodiscard]] std::size_t free_count() const noexcept
    {
        return free_.size();
    }
    [[nodiscard]] std::uint64_t live() const noexcept
    {
        return acquires_total_ - recycles_total_;
    }

    [[nodiscard]] static TlpPool& global();

    /// The calling thread's current pool: the process-wide pool by
    /// default, or the simulation domain's own pool while one is
    /// installed (by TopologyBuilder during domain construction and by
    /// the domain's worker thread before each window). Every runtime
    /// `tlp_pool()` shorthand resolves through here, so allocation stays
    /// thread-confined under the parallel event core.
    [[nodiscard]] static TlpPool& current()
    {
        return current_ != nullptr ? *current_ : global();
    }
    static void set_current(TlpPool* pool) noexcept { current_ = pool; }

    /// Heap allocations across every pool in the process lifetime (the
    /// cold path only). perf_baseline's zero-steady-state-allocation gate
    /// sums over domains through this instead of one pool's counter.
    [[nodiscard]] static std::uint64_t lifetime_allocs() noexcept
    {
        return lifetime_allocs_.load(std::memory_order_relaxed);
    }

  private:
    friend struct TlpDeleter;

    static thread_local TlpPool* current_;
    static std::atomic<std::uint64_t> lifetime_allocs_;

    void recycle(Tlp* tlp) noexcept
    {
        ++recycles_total_;
        try {
            free_.push_back(tlp);
        } catch (...) {
            delete tlp;
        }
    }

    std::vector<Tlp*> free_;
    std::uint64_t allocs_total_ = 0;
    std::uint64_t acquires_total_ = 0;
    std::uint64_t recycles_total_ = 0;
};

/// The calling thread's current TLP pool (the process-wide pool unless a
/// simulation domain's pool is installed — see TlpPool::current()).
[[nodiscard]] inline TlpPool& tlp_pool()
{
    return TlpPool::current();
}

inline void TlpDeleter::operator()(Tlp* tlp) const noexcept
{
    if (tlp == nullptr) {
        return;
    }
    if (tlp->pool_ != nullptr) {
        tlp->pool_->recycle(tlp);
    } else {
        delete tlp;
    }
}

[[nodiscard]] inline TlpPtr make_mem_read(Addr addr, std::uint32_t length,
                                          std::uint8_t tag,
                                          std::uint16_t requester)
{
    return TlpPool::current().make_mem_read(addr, length, tag, requester);
}

[[nodiscard]] inline TlpPtr make_mem_write(Addr addr, std::uint32_t length,
                                           std::uint16_t requester)
{
    return TlpPool::current().make_mem_write(addr, length, requester);
}

[[nodiscard]] inline TlpPtr make_completion(std::uint32_t length,
                                            std::uint8_t tag,
                                            std::uint16_t requester,
                                            std::uint32_t byte_offset,
                                            bool is_last)
{
    return TlpPool::current().make_completion(length, tag, requester,
                                              byte_offset, is_last);
}

/// Checkpoint/restore an owning TLP slot, empty or occupied. On load an
/// occupied slot re-materializes from the calling thread's current pool —
/// the restoring component's own domain pool — preserving the
/// zero-steady-state-allocation property for the resumed run.
void ckpt_tlp(Ckpt& ar, TlpPtr& tlp);

} // namespace accesys::pcie
