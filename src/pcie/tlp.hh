// Transaction Layer Packets (TLPs) and PCIe generation/encoding helpers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::pcie {

/// PCIe generation: determines line encoding efficiency.
enum class Gen : std::uint8_t {
    gen1, ///< 2.5 GT/s class, 8b/10b
    gen2, ///< 5 GT/s class, 8b/10b
    gen3, ///< 8 GT/s class, 128b/130b
    gen4,
    gen5,
    gen6, ///< PAM4/FLIT; efficiency approximated as 242/256
};

[[nodiscard]] constexpr double encoding_efficiency(Gen g)
{
    switch (g) {
    case Gen::gen1:
    case Gen::gen2:
        return 0.8; // 8b/10b
    case Gen::gen3:
    case Gen::gen4:
    case Gen::gen5:
        return 128.0 / 130.0;
    case Gen::gen6:
        return 242.0 / 256.0; // FLIT-mode approximation
    }
    return 1.0;
}

[[nodiscard]] constexpr const char* to_string(Gen g)
{
    switch (g) {
    case Gen::gen1: return "Gen1";
    case Gen::gen2: return "Gen2";
    case Gen::gen3: return "Gen3";
    case Gen::gen4: return "Gen4";
    case Gen::gen5: return "Gen5";
    case Gen::gen6: return "Gen6";
    }
    return "?";
}

enum class TlpType : std::uint8_t {
    mem_read,   ///< MRd — non-posted, expects completion(s) with data
    mem_write,  ///< MWr — posted
    completion, ///< CplD — carries read data back to the requester
};

[[nodiscard]] constexpr const char* to_string(TlpType t)
{
    switch (t) {
    case TlpType::mem_read: return "MRd";
    case TlpType::mem_write: return "MWr";
    case TlpType::completion: return "CplD";
    }
    return "?";
}

/// One transaction-layer packet.
///
/// `length` is the payload byte count for MWr/CplD and the *requested* byte
/// count for MRd (which carries no payload on the wire). Completions for one
/// MRd may be split; `byte_offset`/`is_last` let the requester reassemble.
struct Tlp {
    TlpType type = TlpType::mem_read;
    Addr addr = 0;               ///< target address (MRd/MWr); 0 for CplD
    std::uint32_t length = 0;
    std::uint8_t tag = 0;        ///< transaction tag (MRd and its CplDs)
    std::uint16_t requester = 0; ///< requester id (endpoint/port number)
    std::uint32_t byte_offset = 0; ///< CplD: offset of this chunk in the request
    bool is_last = true;           ///< CplD: final completion of the request

    /// Small functional payload for MMIO register traffic (DMA data stays in
    /// the global BackingStore; see DESIGN.md on the timing/functional split).
    std::vector<std::uint8_t> payload;

    [[nodiscard]] bool has_payload() const noexcept
    {
        return type != TlpType::mem_read;
    }

    [[nodiscard]] std::uint32_t payload_bytes() const noexcept
    {
        return has_payload() ? length : 0;
    }

    [[nodiscard]] std::string describe() const;
};

using TlpPtr = std::unique_ptr<Tlp>;

[[nodiscard]] TlpPtr make_mem_read(Addr addr, std::uint32_t length,
                                   std::uint8_t tag, std::uint16_t requester);
[[nodiscard]] TlpPtr make_mem_write(Addr addr, std::uint32_t length,
                                    std::uint16_t requester);
[[nodiscard]] TlpPtr make_completion(std::uint32_t length, std::uint8_t tag,
                                     std::uint16_t requester,
                                     std::uint32_t byte_offset, bool is_last);

} // namespace accesys::pcie
