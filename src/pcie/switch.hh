// PCIe switch: one upstream port, N downstream ports, store-and-forward.
//
// Routing rules:
//   * memory TLPs (MRd/MWr) whose address falls in a downstream BAR go to
//     that downstream port; all other memory TLPs go upstream (host memory).
//   * completions route by requester id (0 = root complex / host).
//
// Each forwarded TLP is charged the switch latency (paper Table II: 50 ns)
// before entering the egress queue; ingress buffer space (and thus the
// upstream transmitter's credits) is released only once the TLP leaves on
// the egress wire, which is what makes large packets "stall at each
// component" (paper §V-B1b).
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "mem/addr_range.hh"
#include "pcie/link.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::pcie {

struct SwitchParams {
    double latency_ns = 50.0;
};

class PcieSwitch final : public SimObject, public PcieNode {
  public:
    PcieSwitch(Simulator& sim, std::string name, const SwitchParams& params);

    /// Connect the port that faces the root complex.
    void set_upstream(PciePort& port);

    /// Connect a device-facing port. `bars` are the address ranges owned by
    /// the device behind it; `device_id` its requester id (non-zero).
    void add_downstream(PciePort& port,
                        std::vector<mem::AddrRange> bars,
                        std::uint16_t device_id);

    /// Connect a port with a whole subtree behind it (e.g. a nested
    /// switch): `bars` is the union of the subtree's address ranges and
    /// `device_ids` every requester id reachable through it, so memory
    /// TLPs route down by BAR and completions route down by requester id.
    void add_downstream(PciePort& port,
                        std::vector<mem::AddrRange> bars,
                        const std::vector<std::uint16_t>& device_ids);

    // PcieNode
    void recv_tlp(unsigned port_idx, TlpPtr tlp) override;
    void credit_avail(unsigned port_idx) override;

    /// Checkpoint/restore the delay stage and per-egress staging queues.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    struct Egress {
        PciePort* port = nullptr;
        /// TLPs staged for this egress; `from` is the ingress port index
        /// whose buffer is released once the TLP departs.
        struct Staged {
            TlpPtr tlp;
            unsigned from = 0;
        };
        RingBuffer<Staged> q;
    };

    struct Downstream {
        std::vector<mem::AddrRange> bars;
        std::vector<std::uint16_t> device_ids;
    };

    [[nodiscard]] unsigned route(const Tlp& tlp) const;
    /// One-entry memo of the last BAR-routed decision (DMA streams hit the
    /// same downstream BAR in long runs). Pure-function cache: identical
    /// inputs produce identical routes, so determinism is unaffected.
    mutable mem::AddrRange last_bar_{};
    mutable unsigned last_bar_out_ = 0;
    void kick(unsigned egress_idx);
    void forward_delayed();

    SwitchParams params_;
    Tick latency_ticks_ = 0; ///< precomputed ticks_from_ns(latency_ns)
    /// Egress ports; index 0 = upstream. Deque: elements hold move-only
    /// queues and must never relocate.
    std::deque<Egress> egress_;
    std::vector<Downstream> downstream_; ///< parallel to egress_[1..]
    /// requester id -> egress index; flat (a handful of entries), scanned
    /// linearly on the completion routing fast path.
    std::vector<std::pair<std::uint16_t, unsigned>> by_device_;
    [[nodiscard]] const unsigned* egress_for_device(std::uint16_t id) const
    {
        for (const auto& [dev, idx] : by_device_) {
            if (dev == id) {
                return &idx;
            }
        }
        return nullptr;
    }

    /// Ingress-side store-and-forward delay stage.
    struct Delayed {
        Tick ready = 0;
        TlpPtr tlp;
        unsigned from = 0;
    };
    RingBuffer<Delayed> delay_q_;
    Event forward_event_{"", nullptr};

    stats::Scalar forwarded_{stat_group(), "forwarded", "TLPs forwarded"};
    stats::Scalar upstream_tlps_{stat_group(), "upstream_tlps",
                                 "TLPs routed toward the root complex"};
    stats::Scalar downstream_tlps_{stat_group(), "downstream_tlps",
                                   "TLPs routed toward endpoints"};
};

} // namespace accesys::pcie
