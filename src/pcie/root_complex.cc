#include "pcie/root_complex.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::pcie {

void RcParams::validate() const
{
    require_cfg(is_pow2(host_split_bytes) && host_split_bytes >= 16,
                "RC host split must be a power of two >= 16");
    require_cfg(is_pow2(max_payload_bytes) && max_payload_bytes >= 32,
                "RC max payload must be a power of two >= 32");
    require_cfg(max_inbound_reads > 0, "RC needs at least one inbound slot");
    require_cfg(mmio_tags > 0 && mmio_tags <= 256,
                "RC MMIO tags must be in 1..256");
}

RootComplex::RootComplex(Simulator& sim, std::string name,
                         const RcParams& params)
    : SimObject(sim, std::move(name)),
      params_(params),
      mem_port_(this->name() + ".mem_side", *this),
      mmio_port_(this->name() + ".mmio_side", *this),
      mem_q_(sim, this->name() + ".mem_q",
             [](void* s, mem::PacketPtr& pkt) {
                 return static_cast<RootComplex*>(s)->mem_port_.send_req(
                     pkt);
             },
             this),
      mmio_resp_q_(sim, this->name() + ".mmio_resp_q",
                   [](void* s, mem::PacketPtr& pkt) {
                       return static_cast<RootComplex*>(s)
                           ->mmio_port_.send_resp(pkt);
                   },
                   this),
      inbound_reads_(params.max_inbound_reads),
      slot_free_bits_((params.max_inbound_reads + 63) / 64, 0),
      mmio_pending_(params.mmio_tags),
      mmio_tag_free_(params.mmio_tags, 1),
      requestor_id_(mem::alloc_requestor_id())
{
    params_.validate();
    pkt_pool_ = &mem::packet_pool();
    tlp_pool_ = &tlp_pool();
    for (std::size_t s = 0; s < params_.max_inbound_reads; ++s) {
        slot_free_bits_[s / 64] |= std::uint64_t{1} << (s % 64);
    }
    latency_ticks_ = ticks_from_ns(params_.latency_ns);
    split_shift_ = log2i(params_.host_split_bytes);
    split_mask_ = params_.host_split_bytes - 1;
    if (params_.completion_timeout_ns > 0) {
        cpl_timeout_ticks_ = ticks_from_ns(params_.completion_timeout_ns);
        watchdog_ = std::make_unique<MmioWatchdog>(stat_group(),
                                                   params_.mmio_tags);
        cpl_timeout_event_.set_name(this->name() + ".cpl_timeout");
        cpl_timeout_event_.set_raw_callback(
            [](void* self) {
                static_cast<RootComplex*>(self)->check_mmio_timeouts();
            },
            this);
    }
    process_event_.set_name(this->name() + ".process");
    process_event_.set_raw_callback(
        [](void* self) {
            static_cast<RootComplex*>(self)->process_delayed();
        },
        this);
    // When the fabric queue drains, head-of-line stalls may clear.
    mem_q_.set_drain_hook(
        [](void* s) {
            auto* self = static_cast<RootComplex*>(s);
            if (!self->delay_q_.empty() &&
                !self->process_event_.scheduled()) {
                self->eq().schedule_express(
                    self->process_event_,
                    std::max(self->now(), self->delay_q_.front().ready));
            }
        },
        this);
    mem_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<RootComplex*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<RootComplex*>(s)->retry_req(); }, this);
    mmio_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<RootComplex*>(s)->recv_req(pkt);
        },
        [](void* s) { static_cast<RootComplex*>(s)->retry_resp(); }, this);
}

void RootComplex::connect_pcie(PciePort& port)
{
    ensure(pcie_port_ == nullptr, name(), ": PCIe port already connected");
    pcie_port_ = &port;
    port.attach(*this, 0);
    egress_ = std::make_unique<TlpQueue>(port);
}

void RootComplex::recv_tlp(unsigned /*port_idx*/, TlpPtr tlp)
{
    const Tick ready = now() + latency_ticks_;
    delay_q_.push_back(Delayed{ready, std::move(tlp)});
    if (!process_event_.scheduled()) {
        eq().schedule_express(process_event_, ready);
    }
}

void RootComplex::credit_avail(unsigned /*port_idx*/)
{
    // Only fires when a staged completion/MMIO TLP was refused for want of
    // credits (lazy link accounting elides the idle-link kicks); the
    // TlpQueue holds everything that could be waiting.
    if (egress_) {
        egress_->kick();
    }
}

void RootComplex::process_delayed()
{
    while (!delay_q_.empty() && delay_q_.front().ready <= now()) {
        Tlp& head = *delay_q_.front().tlp;

        if (head.type == TlpType::mem_read) {
            const std::size_t chunks =
                split_count(head.addr, head.length);
            if (inbound_live_ >= params_.max_inbound_reads ||
                mem_q_.size() + chunks > params_.mem_queue_capacity) {
                ++hol_stalls_;
                return; // keep ingress credits held: upstream back-pressure
            }
            service_read(head);
        } else if (head.type == TlpType::mem_write) {
            const std::size_t chunks =
                split_count(head.addr, head.length);
            if (mem_q_.size() + chunks > params_.mem_queue_capacity) {
                ++hol_stalls_;
                return;
            }
            service_write(head);
        } else {
            service_completion(std::move(delay_q_.front().tlp));
            delay_q_.pop_front();
            continue;
        }

        pcie_port_->release_ingress(head.payload_bytes());
        delay_q_.pop_front();
    }
    if (!delay_q_.empty() && !process_event_.scheduled()) {
        eq().schedule_express(process_event_,
                                       delay_q_.front().ready);
    }
}

void RootComplex::service_read(Tlp& tlp)
{
    const std::uint32_t key = read_key(tlp.requester, tlp.tag);
    if (key >= slot_of_key_.size()) {
        // First use of this (requester, tag) pair: grow the direct map
        // (bounded by num_devices << 8 entries, hit once per new key).
        slot_of_key_.resize(key + 1, -1);
    }
    if (watchdog_ != nullptr && slot_of_key_[key] >= 0) {
        // A completion-timeout retry raced the still-in-service original
        // read (the requester gave up too early). The original's
        // completions will serve the tag; drop the duplicate request.
        ++watchdog_->dup_reads;
        return;
    }
    ++inbound_read_tlps_;
    ensure(slot_of_key_[key] < 0, name(), ": duplicate inbound read tag ",
           key);

    const std::ptrdiff_t slot = lowest_free_slot();
    ensure(slot >= 0, name(), ": inbound read slots exhausted");
    InboundRead* state = &inbound_reads_[static_cast<std::size_t>(slot)];
    const auto chunks =
        static_cast<std::uint32_t>(split_count(tlp.addr, tlp.length));
    ensure(chunks <= InboundRead::kMaxReadChunks, name(),
           ": inbound read splits into too many chunks");
    *state = InboundRead{};
    state->key = key;
    state->live = true;
    slot_of_key_[key] = static_cast<std::int32_t>(slot);
    slot_free_bits_[static_cast<std::size_t>(slot) / 64] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(slot) % 64));
    state->addr = tlp.addr;
    state->size = tlp.length;
    state->tag = tlp.tag;
    state->requester = tlp.requester;
    state->chunks = chunks;
    ++inbound_live_;

    for (std::uint32_t off = 0, chunk = 0; off < tlp.length; ++chunk) {
        const std::uint32_t n = split_span(tlp.addr, tlp.length, off);
        auto pkt = pkt_pool_->make_read(tlp.addr + off, n);
        pkt->set_requestor(requestor_id_);
        pkt->set_tag((static_cast<std::uint64_t>(key) << 16) | chunk);
        pkt->set_stream(tlp.requester);
        pkt->flags.from_device = true;
        pkt->flags.needs_translation = params_.device_addresses_virtual;
        pkt->flags.uncacheable = params_.inbound_uncacheable;
        mem_q_.push(std::move(pkt), now());
        off += n;
    }
}

void RootComplex::service_write(Tlp& tlp)
{
    ++inbound_write_tlps_;
    for (std::uint32_t off = 0; off < tlp.length;) {
        const std::uint32_t n = split_span(tlp.addr, tlp.length, off);
        auto pkt = pkt_pool_->make_write(tlp.addr + off, n);
        pkt->set_requestor(requestor_id_);
        pkt->set_stream(tlp.requester);
        pkt->flags.from_device = true;
        pkt->flags.posted = true;
        pkt->flags.needs_translation = params_.device_addresses_virtual;
        // Sub-line writes (completion flags, MSI-style signals) go
        // uncacheable so they reach the bus and snoop-invalidate pollers.
        pkt->flags.uncacheable =
            params_.inbound_uncacheable || n < params_.host_split_bytes;
        mem_q_.push(std::move(pkt), now());
        off += n;
    }
}

void RootComplex::service_completion(TlpPtr tlp)
{
    // Completion for an outbound (CPU MMIO) read.
    const std::uint8_t tag = tlp->tag;
    if (watchdog_ != nullptr &&
        (tag >= mmio_pending_.size() || mmio_pending_[tag] == nullptr)) {
        // Late completion for a tag already master-aborted (or a duplicate
        // from a retry racing the original): drop it, keep the credits
        // flowing.
        ++watchdog_->stray;
        pcie_port_->release_ingress(tlp->payload_bytes());
        return;
    }
    ensure(tag < mmio_pending_.size() && mmio_pending_[tag] != nullptr,
           name(), ": stray MMIO completion tag ", static_cast<int>(tag));
    mem::PacketPtr pkt = std::move(mmio_pending_[tag]);
    mmio_tag_free_[tag] = 1;

    pkt->make_response();
    if (tlp->has_data()) {
        pkt->set_payload(tlp->data(), tlp->data_size());
    }
    mmio_resp_q_.push(std::move(pkt), now());
    pcie_port_->release_ingress(tlp->payload_bytes());

    if (mmio_blocked_upstream_) {
        mmio_blocked_upstream_ = false;
        mmio_port_.send_retry_req();
    }
}

bool RootComplex::recv_resp(mem::PacketPtr& pkt)
{
    // Only inbound-read chunks generate responses (writes are posted).
    if (pkt->cmd() != mem::MemCmd::read_resp) {
        panic(name(), ": unexpected fabric response: ", pkt->describe());
    }
    const auto key = static_cast<std::uint32_t>(pkt->tag() >> 16);
    const auto chunk = static_cast<std::uint32_t>(pkt->tag() & 0xFFFF);

    const std::ptrdiff_t slot = find_inbound_slot(key);
    ensure(slot >= 0, name(), ": response for unknown read key=", key,
           " chunk=", chunk, " addr=0x", std::hex, pkt->addr());
    InboundRead* rd = &inbound_reads_[static_cast<std::size_t>(slot)];
    ensure(chunk < rd->chunks, name(), ": bad chunk index");
    rd->poisoned |= pkt->flags.poisoned;
    rd->mark_chunk_done(chunk);

    advance_completions(static_cast<std::size_t>(slot));
    return true;
}

void RootComplex::advance_completions(std::size_t slot)
{
    InboundRead& rd = inbound_reads_[slot];

    for (;;) {
        if (rd.emitted >= rd.size) {
            break;
        }
        const std::uint32_t span =
            std::min(params_.max_payload_bytes, rd.size - rd.emitted);
        const std::uint32_t last =
            chunk_index(rd.addr, rd.emitted + span - 1);
        // Chunks below done_prefix are all complete and earlier spans have
        // already been emitted, so the span is ready iff the prefix covers
        // its last chunk — one compare instead of a bit rescan.
        if (rd.done_prefix <= last) {
            return;
        }
        const bool is_last = rd.emitted + span >= rd.size;
        TlpPtr cpl = tlp_pool_->make_completion(span, rd.tag, rd.requester,
                                                rd.emitted, is_last);
        cpl->poisoned = rd.poisoned;
        egress_->push(std::move(cpl));
        ++completions_sent_;
        rd.emitted += span;
        if (is_last) {
            rd.live = false;
            slot_of_key_[rd.key] = -1;
            slot_free_bits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
            --inbound_live_;
            // A service slot freed: head-of-line stall may clear.
            if (!delay_q_.empty() && !process_event_.scheduled()) {
                eq().schedule_express(
                    process_event_,
                    std::max(now(), delay_q_.front().ready));
            }
            return;
        }
    }
}

bool RootComplex::recv_req(mem::PacketPtr& pkt)
{
    if (pkt->is_write()) {
        ++mmio_writes_;
        auto tlp = tlp_pool_->make_mem_write(pkt->addr(), pkt->size(), 0);
        if (pkt->has_payload()) {
            tlp->set_data(pkt->payload_data(), pkt->payload_size());
        }
        egress_->push(std::move(tlp));
        if (!pkt->flags.posted) {
            // MMIO writes are posted on the wire; ack the fabric now.
            pkt->make_response();
            mmio_resp_q_.push(std::move(pkt), now());
        }
        return true;
    }

    // MMIO read: needs a completion tag.
    const auto free_it =
        std::find(mmio_tag_free_.begin(), mmio_tag_free_.end(), 1);
    if (free_it == mmio_tag_free_.end()) {
        mmio_blocked_upstream_ = true;
        return false;
    }
    const auto tag =
        static_cast<std::uint8_t>(free_it - mmio_tag_free_.begin());
    *free_it = 0;
    ++mmio_reads_;

    auto tlp = tlp_pool_->make_mem_read(pkt->addr(), pkt->size(), tag, 0);
    mmio_pending_[tag] = std::move(pkt);
    egress_->push(std::move(tlp));
    if (watchdog_ != nullptr) {
        watchdog_->deadline[tag] = now() + cpl_timeout_ticks_;
        watchdog_->tries[tag] = 0;
        if (!cpl_timeout_event_.scheduled()) {
            schedule(cpl_timeout_event_, watchdog_->deadline[tag]);
        }
    }
    return true;
}

void RootComplex::check_mmio_timeouts()
{
    Tick next = kMaxTick;
    for (std::size_t tag = 0; tag < mmio_pending_.size(); ++tag) {
        if (mmio_pending_[tag] == nullptr) {
            continue;
        }
        if (watchdog_->deadline[tag] <= now()) {
            ++watchdog_->timeouts;
            if (watchdog_->tries[tag] >= params_.completion_max_retries) {
                // Master abort: answer the fabric with all-ones so the CPU
                // observes the classic dead-device read value instead of
                // hanging forever.
                ++watchdog_->aborts;
                mem::PacketPtr pkt = std::move(mmio_pending_[tag]);
                mmio_tag_free_[tag] = 1;
                const std::vector<std::uint8_t> ones(pkt->size(), 0xFF);
                pkt->make_response();
                pkt->set_payload(ones.data(), ones.size());
                mmio_resp_q_.push(std::move(pkt), now());
                if (mmio_blocked_upstream_) {
                    mmio_blocked_upstream_ = false;
                    mmio_port_.send_retry_req();
                }
                continue;
            }
            // Re-issue the MRd under the same tag with exponential
            // backoff; a late completion of the original attempt wins the
            // race and the duplicate is dropped as stray.
            ++watchdog_->tries[tag];
            watchdog_->deadline[tag] =
                now() + (cpl_timeout_ticks_
                         << std::min(watchdog_->tries[tag], 16U));
            ++watchdog_->retries;
            const mem::PacketPtr& pkt = mmio_pending_[tag];
            egress_->push(tlp_pool_->make_mem_read(
                pkt->addr(), pkt->size(), static_cast<std::uint8_t>(tag),
                0));
        }
        if (mmio_pending_[tag] != nullptr) {
            next = std::min(next, watchdog_->deadline[tag]);
        }
    }
    if (next != kMaxTick) {
        schedule(cpl_timeout_event_, next);
    }
}

void RootComplex::serialize(Ckpt& ar)
{
    std::uint64_t n_delay = delay_q_.size();
    ar.io(n_delay);
    if (ar.loading()) {
        delay_q_.clear();
    }
    for (std::uint64_t i = 0; i < n_delay; ++i) {
        if (ar.saving()) {
            Delayed& d = delay_q_[i];
            ar.io(d.ready);
            ckpt_tlp(ar, d.tlp);
        } else {
            Delayed d;
            ar.io(d.ready);
            ckpt_tlp(ar, d.tlp);
            delay_q_.push_back(std::move(d));
        }
    }

    // Inbound read slots: POD, fixed pool.
    const std::size_t n_slots = inbound_reads_.size();
    ar.pod_vec(inbound_reads_);
    ensure(inbound_reads_.size() == n_slots, name(),
           ": inbound slot count changed across checkpoint");
    ar.pod_vec(slot_of_key_);
    ar.pod_vec(slot_free_bits_);
    std::uint64_t live = inbound_live_;
    ar.io(live, mmio_blocked_upstream_);
    inbound_live_ = static_cast<std::size_t>(live);

    // MMIO tag state.
    ar.pod_vec(mmio_tag_free_);
    for (auto& slot : mmio_pending_) {
        std::uint8_t has_pkt = slot != nullptr ? 1 : 0;
        ar.io(has_pkt);
        if (has_pkt != 0) {
            mem::ckpt_packet(ar, slot);
        } else if (ar.loading()) {
            slot.reset();
        }
    }
    if (watchdog_ != nullptr) {
        ar.pod_vec(watchdog_->deadline);
        ar.pod_vec(watchdog_->tries);
        cpl_timeout_event_.serialize(ar, eq());
    }

    if (egress_ != nullptr) {
        egress_->serialize(ar);
    }
    mem_port_.serialize(ar);
    mmio_port_.serialize(ar);
    mem_q_.serialize(ar);
    mmio_resp_q_.serialize(ar);
    process_event_.serialize(ar, eq());
}

void RootComplex::report_occupancy(std::string& out) const
{
    std::size_t mmio_live = 0;
    for (const auto& slot : mmio_pending_) {
        mmio_live += slot != nullptr ? 1 : 0;
    }
    if (delay_q_.empty() && inbound_live_ == 0 && mmio_live == 0 &&
        mem_q_.empty() && mmio_resp_q_.empty() &&
        (egress_ == nullptr || egress_->empty())) {
        return;
    }
    out += "  " + name() + ": delayed=" + std::to_string(delay_q_.size()) +
           ", inbound_reads=" + std::to_string(inbound_live_) +
           ", mmio_pending=" + std::to_string(mmio_live) +
           ", mem_q=" + std::to_string(mem_q_.size()) +
           ", egress=" +
           std::to_string(egress_ != nullptr ? egress_->size() : 0) +
           (mmio_blocked_upstream_ ? ", blocking CPU MMIO" : "") + "\n";
}

} // namespace accesys::pcie
