#include "dma/dma_engine.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::dma {

void DmaParams::validate() const
{
    require_cfg(channels >= 1, "DMA needs at least one channel");
    require_cfg(is_pow2(request_bytes) && request_bytes >= 16,
                "DMA request size must be a power of two >= 16");
    require_cfg(is_pow2(write_bytes) && write_bytes >= 16,
                "DMA write size must be a power of two >= 16");
    require_cfg(window_bytes >= request_bytes,
                "DMA window must hold at least one request");
    require_cfg(max_tags >= 1 && max_tags <= 256,
                "DMA tags must be in 1..256 (8-bit PCIe tag field)");
}

DmaEngine::DmaEngine(Simulator& sim, std::string name,
                     const DmaParams& params, DmaPort& port,
                     mem::BackingStore& store)
    : SimObject(sim, std::move(name)),
      params_(params),
      port_(&port),
      store_(&store),
      tags_(params.max_tags)
{
    params_.validate();
    tlp_pool_ = &pcie::tlp_pool();
    tag_free_bits_.assign((params_.max_tags + 63) / 64, 0);
    for (unsigned t = 0; t < params_.max_tags; ++t) {
        tag_free_bits_[t / 64] |= std::uint64_t{1} << (t % 64);
    }
    if (params_.completion_timeout_ns > 0 || params_.fault_mode) {
        fault_stats_ = std::make_unique<FaultStats>(stat_group());
    }
    if (params_.completion_timeout_ns > 0) {
        timeout_ticks_ = ticks_from_ns(params_.completion_timeout_ns);
        timeout_event_.set_name(this->name() + ".cpl_timeout");
        timeout_event_.set_raw_callback(
            [](void* self) {
                static_cast<DmaEngine*>(self)->check_timeouts();
            },
            this);
    }
}

void DmaEngine::set_request_bytes(std::uint32_t bytes)
{
    ensure(idle(), name(), ": cannot change request size mid-transfer");
    params_.request_bytes = bytes;
    params_.validate();
}

void DmaEngine::submit(DmaJob job)
{
    ensure(job.bytes > 0, name(), ": zero-length DMA job");
    if (job.dir == DmaJob::Dir::dev_to_host) {
        // Snapshot the device data now: the producer may reuse its staging
        // buffer before the posted writes drain (models a drain FIFO). In
        // parallel mode the snapshot is staged in the domain's journal and
        // applied to host memory by the root thread at the next barrier or
        // read fence — same tick, same bytes, no cross-thread write.
        if (journal_ != nullptr) {
            journal_->record(now(), *store_, job.host_addr, job.dev_addr,
                             job.bytes);
        } else {
            store_->copy(job.host_addr, job.dev_addr, job.bytes);
        }
    }
    queued_.push_back(std::move(job));
    pump();
}

void DmaEngine::pump()
{
    // `on_sent` callbacks can fire synchronously from dma_send and re-enter
    // pump() while we iterate `active_`; fold nested calls into the loop.
    if (pumping_) {
        repump_ = true;
        return;
    }
    if (active_.empty() && queued_.empty()) {
        return; // idle engine: credit_avail/tx_ready ticks are free
    }
    pumping_ = true;
    do {
        repump_ = false;
        while (active_.size() < params_.channels && !queued_.empty()) {
            JobState* js = acquire_job_state();
            js->job = std::move(queued_.front());
            queued_.pop_front();
            active_.push_back(js);
        }
        // Round-robin service across the active channels.
        for (JobState* js : active_) {
            if (js->job.dir == DmaJob::Dir::host_to_dev) {
                pump_read(*js);
            } else {
                pump_write(*js);
            }
        }
        // Reap any job that completed during pumping.
        for (auto it = active_.begin(); it != active_.end();) {
            if ((*it)->finished >= (*it)->job.bytes) {
                JobState* js = *it;
                const Continuation cb = js->job.on_complete;
                js->job = DmaJob{}; // drop the descriptor before recycling
                job_free_.push_back(js);
                it = active_.erase(it);
                ++jobs_done_;
                if (cb) {
                    cb.fire();
                }
            } else {
                ++it;
            }
        }
        if (!queued_.empty() && active_.size() < params_.channels) {
            repump_ = true; // a channel freed during reaping
        }
    } while (repump_);
    pumping_ = false;
}

DmaEngine::JobState* DmaEngine::acquire_job_state()
{
    if (job_free_.empty()) {
        job_pool_.push_back(std::make_unique<JobState>());
        job_pool_.back()->engine = this;
        job_free_.push_back(job_pool_.back().get());
    }
    JobState* js = job_free_.back();
    job_free_.pop_back();
    js->issued = 0;
    js->finished = 0;
    return js;
}

void DmaEngine::pump_read(JobState& js)
{
    while (js.issued < js.job.bytes && tags_in_use_ < params_.max_tags &&
           window_in_use_ + params_.request_bytes <= params_.window_bytes) {
        const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            params_.request_bytes, js.job.bytes - js.issued));
        // Claim the lowest free tag (same pick order as a linear scan).
        unsigned tag = tags_.size();
        for (std::size_t w = 0; w < tag_free_bits_.size(); ++w) {
            if (tag_free_bits_[w] != 0) {
                tag = static_cast<unsigned>(
                    w * 64 +
                    static_cast<unsigned>(
                        __builtin_ctzll(tag_free_bits_[w])));
                break;
            }
        }
        ensure(tag < tags_.size(), name(), ": tag accounting broken");
        tag_free_bits_[tag / 64] &= ~(std::uint64_t{1} << (tag % 64));
        tags_[tag] = TagState{&js, js.issued, chunk, true};
        ++tags_in_use_;
        window_in_use_ += chunk;
        if (timeout_ticks_ > 0) {
            tags_[tag].deadline = now() + timeout_ticks_;
            arm_timeout(tags_[tag].deadline);
        }

        port_->dma_send(
            tlp_pool_->make_mem_read(js.job.host_addr + js.issued, chunk,
                                     static_cast<std::uint8_t>(tag),
                                     port_->dma_device_id()),
            {});
        ++reads_issued_;
        js.issued += chunk;
    }
}

void DmaEngine::pump_write(JobState& js)
{
    while (js.issued < js.job.bytes &&
           port_->dma_egress_depth() < params_.max_egress) {
        const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            params_.write_bytes, js.job.bytes - js.issued));
        const std::uint64_t off = js.issued;

        port_->dma_send(
            tlp_pool_->make_mem_write(js.job.host_addr + off, chunk,
                                      port_->dma_device_id()),
            pcie::SentHook{&DmaEngine::write_sent_cb, &js, chunk});
        ++writes_issued_;
        js.issued += chunk;
    }
}

void DmaEngine::write_sent_cb(void* p, std::uint32_t sent)
{
    auto* jsp = static_cast<JobState*>(p);
    jsp->finished += sent;
    jsp->engine->bytes_written_ += sent;
    if (jsp->finished >= jsp->job.bytes) {
        jsp->engine->pump(); // reap + refill the channel
    }
}

void DmaEngine::arm_timeout(Tick deadline)
{
    // One shared timer at the earliest known deadline; check_timeouts()
    // re-arms from a scan. Deadlines only grow (issue order + backoff), so
    // an already-scheduled timer is never late.
    if (!timeout_event_.scheduled()) {
        schedule(timeout_event_, deadline);
    }
}

void DmaEngine::check_timeouts()
{
    Tick next = kMaxTick;
    for (unsigned t = 0; t < tags_.size(); ++t) {
        TagState& ts = tags_[t];
        if (!ts.busy) {
            continue;
        }
        if (ts.deadline <= now()) {
            ++fault_stats_->timeouts;
            if (port_->dma_path_dead()) {
                // The link tx path has latched failed: no retry can ever
                // complete, so skip the backoff ladder and fail now.
                ++fault_stats_->dead_path;
                fail_job(*ts.job);
                continue;
            }
            if (ts.retries >= params_.completion_max_retries) {
                // Retry budget exhausted: the whole transfer is abandoned
                // (frees every tag of this job, including this one).
                fail_job(*ts.job);
                continue;
            }
            // Re-issue the read under the same tag with exponential
            // backoff; a late completion of the original attempt retires
            // the tag early and the duplicate is dropped as stray.
            ++ts.retries;
            ts.deadline =
                now() + (timeout_ticks_ << std::min(ts.retries, 16U));
            ++fault_stats_->retries;
            port_->dma_send(
                tlp_pool_->make_mem_read(ts.job->job.host_addr + ts.offset,
                                         ts.bytes,
                                         static_cast<std::uint8_t>(t),
                                         port_->dma_device_id()),
                {});
        }
        if (ts.busy) {
            next = std::min(next, ts.deadline);
        }
    }
    if (next != kMaxTick) {
        schedule(timeout_event_, next);
    }
    pump(); // failed jobs free channels; refill from the queue
}

void DmaEngine::fail_job(JobState& js)
{
    ++fault_stats_->jobs_failed;
    for (unsigned t = 0; t < tags_.size(); ++t) {
        TagState& ts = tags_[t];
        if (ts.busy && ts.job == &js) {
            ts.busy = false;
            tag_free_bits_[t / 64] |= std::uint64_t{1} << (t % 64);
            --tags_in_use_;
            window_in_use_ -= ts.bytes;
        }
    }
    active_.erase(std::remove(active_.begin(), active_.end(), &js),
                  active_.end());
    // Job-level failure: the completion callback is dropped, never fired —
    // the consumer (accelerator pipeline, and transitively the host's
    // completion-flag poll) observes the failure as absence of progress.
    js.job = DmaJob{};
    job_free_.push_back(&js);
}

void DmaEngine::flr_reset()
{
    ensure(!pumping_, name(), ": function-level reset mid-pump");
    for (unsigned t = 0; t < tags_.size(); ++t) {
        TagState& ts = tags_[t];
        if (ts.busy) {
            ts.busy = false;
            tag_free_bits_[t / 64] |= std::uint64_t{1} << (t % 64);
        }
        ts.job = nullptr;
        ts.retries = 0;
    }
    tags_in_use_ = 0;
    window_in_use_ = 0;
    // Reset discards jobs without firing continuations: the controller
    // state they would notify dies with the same reset.
    for (JobState* js : active_) {
        js->job = DmaJob{};
        job_free_.push_back(js);
    }
    active_.clear();
    queued_.clear();
    // A scheduled watchdog tick fires over all-free tags and goes idle.
}

void DmaEngine::on_completion(const pcie::Tlp& cpl)
{
    if ((timeout_ticks_ > 0 || params_.fault_mode) &&
        (cpl.tag >= tags_.size() || !tags_[cpl.tag].busy)) {
        // Unexpected completion: the tag was retired by a timeout retry
        // racing the original CplD, or by a job-level failure. Dropped,
        // exactly as a real requester handles completions it no longer
        // expects.
        ++fault_stats_->stray;
        return;
    }
    ensure(cpl.tag < tags_.size() && tags_[cpl.tag].busy, name(),
           ": completion for idle tag ", static_cast<int>(cpl.tag));
    if (cpl.poisoned) {
        // Poison containment: the data is never consumed — no store copy,
        // no progress. The whole job is failed (its other tags retire as
        // strays) so the poison surfaces as a missing completion flag, not
        // silent corruption.
        ++fault_stats_->poisoned;
        fail_job(*tags_[cpl.tag].job);
        pump();
        return;
    }
    if (!cpl.is_last) {
        if (timeout_ticks_ > 0) {
            // Data is flowing: restart the watchdog for the tail chunks.
            tags_[cpl.tag].deadline = now() + timeout_ticks_;
        }
        return; // partial completion; wait for the final chunk
    }
    TagState& ts = tags_[cpl.tag];
    JobState& js = *ts.job;

    store_->copy(js.job.dev_addr + ts.offset, js.job.host_addr + ts.offset,
                 ts.bytes);
    bytes_read_ += ts.bytes;
    js.finished += ts.bytes;
    window_in_use_ -= ts.bytes;
    ts.busy = false;
    tag_free_bits_[cpl.tag / 64] |= std::uint64_t{1} << (cpl.tag % 64);
    --tags_in_use_;
    pump();
}

namespace {

void ckpt_dma_job(Ckpt& ar, DmaJob& job, TransferListener* listener)
{
    auto dir = static_cast<std::uint8_t>(job.dir);
    std::uint8_t has_cont = job.on_complete ? 1 : 0;
    ar.io(dir, job.host_addr, job.dev_addr, job.bytes, has_cont,
          job.on_complete.kind, job.on_complete.arg);
    if (ar.loading()) {
        job.dir = static_cast<DmaJob::Dir>(dir);
        if (has_cont != 0) {
            ensure(listener != nullptr,
                   "DMA job with continuation but no listener registered");
            job.on_complete.listener = listener;
        } else {
            job.on_complete.listener = nullptr;
        }
    }
}

} // namespace

void DmaEngine::serialize_jobs(Ckpt& ar)
{
    std::uint64_t n_active = active_.size();
    std::uint64_t n_queued = queued_.size();
    ar.io(n_active, n_queued);
    if (ar.saving()) {
        for (JobState* js : active_) {
            ckpt_dma_job(ar, js->job, listener_);
            ar.io(js->issued, js->finished);
        }
        for (DmaJob& job : queued_) {
            ckpt_dma_job(ar, job, listener_);
        }
    } else {
        ensure(active_.empty() && queued_.empty(), name(),
               ": restore into a busy DMA engine");
        for (std::uint64_t i = 0; i < n_active; ++i) {
            JobState* js = acquire_job_state();
            ckpt_dma_job(ar, js->job, listener_);
            ar.io(js->issued, js->finished);
            active_.push_back(js);
        }
        for (std::uint64_t i = 0; i < n_queued; ++i) {
            DmaJob job;
            ckpt_dma_job(ar, job, listener_);
            queued_.push_back(std::move(job));
        }
    }
}

void DmaEngine::serialize(Ckpt& ar)
{
    ensure(!pumping_, name(), ": checkpoint mid-pump");
    ar.io(window_in_use_, tags_in_use_);
    ar.pod_vec(tag_free_bits_);
    for (TagState& ts : tags_) {
        ar.io(ts.busy, ts.offset, ts.bytes, ts.deadline, ts.retries);
        std::uint64_t job_idx = ~0ULL;
        if (ar.saving() && ts.busy) {
            const auto it =
                std::find(active_.begin(), active_.end(), ts.job);
            ensure(it != active_.end(), name(),
                   ": busy tag points at a retired job");
            job_idx =
                static_cast<std::uint64_t>(it - active_.begin());
        }
        ar.io(job_idx);
        if (ar.loading()) {
            if (ts.busy) {
                ensure(job_idx < active_.size(), name(),
                       ": tag job index out of range");
                ts.job = active_[static_cast<std::size_t>(job_idx)];
            } else {
                ts.job = nullptr;
            }
        }
    }
    if (timeout_ticks_ > 0) {
        timeout_event_.serialize(ar, eq());
    }
}

void DmaEngine::report_occupancy(std::string& out) const
{
    if (active_.empty() && queued_.empty()) {
        return;
    }
    out += "  " + name() + ": active_jobs=" + std::to_string(active_.size()) +
           ", queued_jobs=" + std::to_string(queued_.size()) +
           ", tags_in_use=" + std::to_string(tags_in_use_) +
           ", window_bytes=" + std::to_string(window_in_use_) + "\n";
}

std::uint64_t DmaEngine::encode_sent_hook(const pcie::SentHook& h) const
{
    ensure(h.fn == &DmaEngine::write_sent_cb, name(),
           ": unencodable SentHook staged in egress");
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i] == h.ctx) {
            return (static_cast<std::uint64_t>(i) << 32) | h.arg;
        }
    }
    panic(name(), ": SentHook context is not an active DMA job");
}

pcie::SentHook DmaEngine::decode_sent_hook(std::uint64_t code)
{
    const auto idx = static_cast<std::size_t>(code >> 32);
    ensure(idx < active_.size(), name(),
           ": SentHook job index out of range");
    return pcie::SentHook{&DmaEngine::write_sent_cb, active_[idx],
                          static_cast<std::uint32_t>(code & 0xffffffffULL)};
}

} // namespace accesys::dma
