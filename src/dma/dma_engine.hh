// Multi-channel DMA engine for PCIe endpoints.
//
// Reads (host -> device) are issued as MRd TLPs of `request_bytes` — the
// "packet size" knob the paper sweeps in Fig. 4 — bounded by an outstanding
// byte window (the staging buffer) and a PCIe tag pool. Writes
// (device -> host) are posted MWr TLPs of `write_bytes`, gated by the
// endpoint's egress depth.
//
// Functional data moves through the global BackingStore when a chunk
// completes (reads) or is issued (writes); see DESIGN.md on the
// timing/functional split.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/write_journal.hh"
#include "pcie/tlp.hh"
#include "sim/simulator.hh"

namespace accesys::dma {

/// Services the engine needs from its hosting endpoint.
class DmaPort {
  public:
    virtual ~DmaPort() = default;

    /// Stage a TLP for transmission; `on_sent` fires when it hits the wire.
    virtual void dma_send(pcie::TlpPtr tlp, pcie::SentHook on_sent) = 0;

    /// TLPs currently waiting for wire/credits.
    [[nodiscard]] virtual std::size_t dma_egress_depth() const = 0;

    /// Requester id stamped into outgoing TLPs.
    [[nodiscard]] virtual std::uint16_t dma_device_id() const = 0;

    /// The transmit path has latched failed (link replay budget exhausted):
    /// outstanding reads can never complete, so the watchdog short-circuits
    /// retries into an immediate job failure. Defaults to "alive".
    [[nodiscard]] virtual bool dma_path_dead() const { return false; }
};

struct DmaParams {
    unsigned channels = 4;            ///< concurrently active jobs
    std::uint32_t request_bytes = 256; ///< MRd size (Fig. 4 packet-size knob)
    std::uint32_t write_bytes = 256;   ///< MWr payload size
    /// Outstanding read-data window — the engine's staging buffer. Large
    /// request sizes divide this into few in-flight requests, which is the
    /// mechanism behind the paper's large-packet penalty (Fig. 4).
    std::uint64_t window_bytes = 8 * kKiB;
    unsigned max_tags = 128;           ///< outstanding MRd TLPs
    std::size_t max_egress = 16;       ///< stage writes while egress shallow

    /// Completion timeout for outstanding MRd tags; 0 (the default)
    /// disables the watchdog entirely — no timer, no fault stats.
    /// core::System propagates FaultPlan::completion_timeout_ns here.
    double completion_timeout_ns = 0.0;
    /// Timed-out reads are re-issued with exponential backoff up to this
    /// many times; after that the whole job is abandoned (job-level
    /// failure — the completion callback never fires).
    unsigned completion_max_retries = 3;

    /// Set by core::System whenever a FaultInjector is enabled: allocates
    /// the fault stats and tolerates completions for retired tags (poison
    /// containment / FLR drains produce strays even without a watchdog).
    bool fault_mode = false;

    void validate() const;
};

/// Receives transfer-completion continuations (see Continuation below).
class TransferListener {
  public:
    virtual ~TransferListener() = default;
    virtual void transfer_done(std::uint8_t kind, std::uint32_t arg) = 0;
};

/// Completion continuation carried by a transfer job: a (listener, kind,
/// arg) descriptor instead of a heap-allocated closure. The descriptor is
/// plain data, so in-flight jobs checkpoint/restore exactly — the listener
/// pointer is re-bound structurally (each engine/mover serves exactly one
/// listener) and (kind, arg) travel in the checkpoint.
struct Continuation {
    TransferListener* listener = nullptr;
    std::uint8_t kind = 0;
    std::uint32_t arg = 0;

    explicit operator bool() const noexcept { return listener != nullptr; }
    void fire() const { listener->transfer_done(kind, arg); }
};

struct DmaJob {
    enum class Dir {
        host_to_dev, ///< MRd: pull host data into device-local storage
        dev_to_host, ///< MWr: push device data to host memory
    };
    Dir dir = Dir::host_to_dev;
    Addr host_addr = 0;
    Addr dev_addr = 0;
    std::uint64_t bytes = 0;
    Continuation on_complete;
};

class DmaEngine final : public SimObject {
  public:
    DmaEngine(Simulator& sim, std::string name, const DmaParams& params,
              DmaPort& port, mem::BackingStore& store);

    /// Queue a transfer; runs when a channel frees up.
    void submit(DmaJob job);

    [[nodiscard]] bool idle() const
    {
        return active_.empty() && queued_.empty();
    }
    [[nodiscard]] std::size_t jobs_in_flight() const
    {
        return active_.size() + queued_.size();
    }
    [[nodiscard]] const DmaParams& params() const noexcept { return params_; }

    /// Change the read request size between jobs (bench sweeps).
    void set_request_bytes(std::uint32_t bytes);

    /// Route dev->host functional copies through a per-domain journal
    /// instead of writing host memory directly (parallel mode only; see
    /// mem/write_journal.hh). Null restores the direct path.
    void set_write_journal(mem::WriteJournal* journal) noexcept
    {
        journal_ = journal;
    }

    // Hooks called by the hosting endpoint.
    void on_completion(const pcie::Tlp& cpl);
    void on_tx_ready() { pump(); }

    /// Function-level reset: discard every active and queued job without
    /// firing continuations, free all tags and window bytes. Late
    /// completions for the dropped tags are then counted as strays. The
    /// hosting endpoint must have dropped its staged egress first (the
    /// SentHooks point at JobStates recycled here).
    void flr_reset();

    /// The single listener restored into job continuations on load (each
    /// engine serves exactly one device controller).
    void set_continuation_listener(TransferListener* l) noexcept
    {
        listener_ = l;
    }

    /// Checkpoint the job lists (active channels + admission queue). Split
    /// out of serialize() so the hosting endpoint can restore jobs *before*
    /// decoding the SentHooks staged in its egress queue, which point at
    /// active JobStates.
    void serialize_jobs(Ckpt& ar);

    /// Checkpoint/restore tags, window accounting and the timeout watchdog
    /// (serialize_jobs must already have run — hosting endpoints register
    /// before their engine member, so object order guarantees it).
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

    /// Encode/decode a pump_write SentHook as (active-job index, chunk) for
    /// the hosting endpoint's egress-queue checkpoint.
    [[nodiscard]] std::uint64_t encode_sent_hook(
        const pcie::SentHook& h) const;
    [[nodiscard]] pcie::SentHook decode_sent_hook(std::uint64_t code);

  private:
    struct JobState {
        DmaEngine* engine = nullptr; ///< back-pointer for raw SentHooks
        DmaJob job;
        std::uint64_t issued = 0;   ///< bytes requested / staged so far
        std::uint64_t finished = 0; ///< bytes completed / sent so far
    };

    struct TagState {
        JobState* job = nullptr;
        std::uint64_t offset = 0;
        std::uint32_t bytes = 0;
        bool busy = false;
        Tick deadline = 0;    ///< completion-timeout deadline (fault mode)
        unsigned retries = 0; ///< re-issues of this tag so far
    };

    /// Fault-mode stats, allocated only when the completion watchdog is
    /// enabled so clean-run stat dumps are unchanged.
    struct FaultStats {
        explicit FaultStats(stats::Group& g)
            : timeouts(g, "read_timeouts",
                       "MRd completion timeouts observed"),
              retries(g, "read_retries",
                      "MRd TLPs re-issued after a completion timeout"),
              stray(g, "stray_completions",
                    "late CplDs for already-retired tags (dropped)"),
              jobs_failed(g, "jobs_failed",
                          "DMA jobs abandoned after the retry budget"),
              poisoned(g, "poisoned_cpls_contained",
                       "poisoned completions contained (job failed, data "
                       "never consumed)"),
              dead_path(g, "dead_path_failures",
                        "jobs fast-failed on a latched-dead link path")
        {
        }
        stats::Scalar timeouts;
        stats::Scalar retries;
        stats::Scalar stray;
        stats::Scalar jobs_failed;
        stats::Scalar poisoned;
        stats::Scalar dead_path;
    };

    void pump();
    void pump_read(JobState& js);
    void pump_write(JobState& js);
    [[nodiscard]] JobState* acquire_job_state();
    void arm_timeout(Tick deadline);
    void check_timeouts();
    void fail_job(JobState& js);
    static void write_sent_cb(void* p, std::uint32_t sent);

    DmaParams params_;
    DmaPort* port_;
    mem::BackingStore* store_;
    TransferListener* listener_ = nullptr; ///< continuation re-bind on load
    mem::WriteJournal* journal_ = nullptr; ///< dev->host staging (parallel)
    pcie::TlpPool* tlp_pool_ = nullptr; ///< resolved once (chunk loops)

    /// Channel slots in service order. JobState objects are recycled
    /// through `job_free_` (TagState/SentHook back-pointers stay valid for
    /// a slot's whole active life) so the steady state allocates nothing;
    /// the pool only grows the first time each channel depth is reached.
    std::deque<JobState*> active_;
    std::vector<std::unique_ptr<JobState>> job_pool_;
    std::vector<JobState*> job_free_;
    std::deque<DmaJob> queued_;
    std::vector<TagState> tags_;
    /// Bitmap of free tags (bit set = free): the read pump claims the
    /// lowest free tag with a ctz instead of a linear busy scan.
    std::vector<std::uint64_t> tag_free_bits_;
    std::uint64_t window_in_use_ = 0;
    unsigned tags_in_use_ = 0;
    bool pumping_ = false;
    bool repump_ = false;

    Tick timeout_ticks_ = 0; ///< nonzero = completion watchdog armed
    Event timeout_event_{"", nullptr};
    std::unique_ptr<FaultStats> fault_stats_;

    stats::Scalar reads_issued_{stat_group(), "reads_issued",
                                "MRd TLPs issued"};
    stats::Scalar writes_issued_{stat_group(), "writes_issued",
                                 "MWr TLPs issued"};
    stats::Scalar bytes_read_{stat_group(), "bytes_read",
                              "bytes pulled from host"};
    stats::Scalar bytes_written_{stat_group(), "bytes_written",
                                 "bytes pushed to host"};
    stats::Scalar jobs_done_{stat_group(), "jobs_done",
                             "transfer jobs completed"};
};

} // namespace accesys::dma
