// Analytic roofline for the accelerator system (paper Fig. 2).
//
// With per-tile compute time t_c and per-tile transfer time t_m (bytes over
// the binding bandwidth), a deeply pipelined tile loop runs at
//   T(tile) ~ max(t_c, t_m)
// so normalized execution time plateaus once t_c drops below t_m — the
// knee the paper marks at ~1.5 us. Benches overlay this prediction on the
// simulated series.
#pragma once

#include <vector>

#include "sim/error.hh"

namespace accesys::analytic {

struct RooflineParams {
    double bytes_per_tile = 0.0;     ///< operand traffic per output tile
    double bandwidth_gbps = 8.0;     ///< binding transfer bandwidth
    double fixed_overhead_ns = 0.0;  ///< per-tile constant (control, latency)

    void validate() const
    {
        require_cfg(bytes_per_tile > 0 && bandwidth_gbps > 0,
                    "roofline needs positive traffic and bandwidth");
    }
};

/// Transfer-bound floor: time to move one tile's operands, in ns.
[[nodiscard]] double transfer_ns_per_tile(const RooflineParams& p);

/// Predicted per-tile time for a given compute time (ns).
[[nodiscard]] double tile_time_ns(const RooflineParams& p,
                                  double compute_ns);

/// Compute time at which the system transitions between the
/// transfer-bound plateau and the compute-bound linear region.
[[nodiscard]] double knee_compute_ns(const RooflineParams& p);

struct RooflinePoint {
    double compute_ns;
    double predicted_tile_ns;
};

/// Evaluate the model across a sweep of compute times.
[[nodiscard]] std::vector<RooflinePoint> roofline_series(
    const RooflineParams& p, const std::vector<double>& compute_ns_values);

} // namespace accesys::analytic
