#include "analytic/roofline.hh"

#include <algorithm>

namespace accesys::analytic {

double transfer_ns_per_tile(const RooflineParams& p)
{
    p.validate();
    return p.bytes_per_tile / p.bandwidth_gbps; // bytes / (GB/s) = ns
}

double tile_time_ns(const RooflineParams& p, double compute_ns)
{
    return std::max(compute_ns, transfer_ns_per_tile(p)) +
           p.fixed_overhead_ns;
}

double knee_compute_ns(const RooflineParams& p)
{
    return transfer_ns_per_tile(p);
}

std::vector<RooflinePoint> roofline_series(
    const RooflineParams& p, const std::vector<double>& compute_ns_values)
{
    std::vector<RooflinePoint> out;
    out.reserve(compute_ns_values.size());
    for (const double c : compute_ns_values) {
        out.push_back(RooflinePoint{c, tile_time_ns(p, c)});
    }
    return out;
}

} // namespace accesys::analytic
