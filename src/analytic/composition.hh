// GEMM / Non-GEMM composition model (paper §V-D2):
//
//   T_overall(w) = T_other + (1 - w) / P_GEMM + w / P_NonGEMM
//
// where `w` is the Non-GEMM fraction of a unit workload and P_* are the
// phase throughputs of a given system configuration. The crossover solver
// reproduces the Fig. 9 thresholds at which DevMem overtakes a PCIe system.
#pragma once

#include <optional>

#include "sim/error.hh"

namespace accesys::analytic {

struct SystemPerf {
    double t_other = 0.0;   ///< fixed time for other operations
    double p_gemm = 1.0;    ///< GEMM throughput (work units / time)
    double p_nongemm = 1.0; ///< Non-GEMM throughput

    void validate() const
    {
        require_cfg(p_gemm > 0 && p_nongemm > 0,
                    "phase throughputs must be positive");
    }
};

/// Total execution time for Non-GEMM fraction `w` in [0, 1].
[[nodiscard]] double exec_time(const SystemPerf& sys, double w);

/// Non-GEMM fraction at which systems `a` and `b` take equal time, if one
/// exists inside (0, 1). With the linear model this is a closed form.
[[nodiscard]] std::optional<double> crossover_nongemm_frac(
    const SystemPerf& a, const SystemPerf& b);

/// Convenience: the paper quotes thresholds as the *GEMM* fraction above
/// which DevMem wins; this converts a Non-GEMM crossover to that form.
[[nodiscard]] inline double as_gemm_threshold(double nongemm_crossover)
{
    return 1.0 - nongemm_crossover;
}

} // namespace accesys::analytic
