#include "analytic/composition.hh"

#include <cmath>

namespace accesys::analytic {

double exec_time(const SystemPerf& sys, double w)
{
    sys.validate();
    require_cfg(w >= 0.0 && w <= 1.0, "Non-GEMM fraction must be in [0,1]");
    return sys.t_other + (1.0 - w) / sys.p_gemm + w / sys.p_nongemm;
}

std::optional<double> crossover_nongemm_frac(const SystemPerf& a,
                                             const SystemPerf& b)
{
    a.validate();
    b.validate();
    // T_a(w) - T_b(w) = (c_a - c_b) + w * (s_a - s_b), with
    //   c = t_other + 1/p_gemm,  s = 1/p_nongemm - 1/p_gemm.
    const double c = (a.t_other + 1.0 / a.p_gemm) -
                     (b.t_other + 1.0 / b.p_gemm);
    const double s = (1.0 / a.p_nongemm - 1.0 / a.p_gemm) -
                     (1.0 / b.p_nongemm - 1.0 / b.p_gemm);
    if (s == 0.0) {
        return std::nullopt; // parallel lines: no unique crossover
    }
    const double w = -c / s;
    if (w <= 0.0 || w >= 1.0 || !std::isfinite(w)) {
        return std::nullopt;
    }
    return w;
}

} // namespace accesys::analytic
