// System MMU: translates device-originated (inbound DMA) requests.
//
// Pipeline per request needing translation:
//   micro-TLB (small, per-stream) -> main TLB -> page-table walk.
// Walks are performed by an integrated walker with a bounded number of
// concurrent walk slots; each walk issues dependent 8-byte PTE reads through
// the ordinary fabric port, so walk latency reflects real memory-system
// load. A page-walk cache (PWC) short-circuits upper levels.
//
// Multi-device systems: every inbound request carries a stream id (stamped
// by the root complex from the PCIe requester id, optionally remapped via
// map_stream()). Each stream owns a private micro-TLB and a per-stream stat
// group ("<smmu>.stream<N>.*"), modelling the per-device translation
// contexts of a real SMMU; the main TLB, page-walk cache and walker slots
// are shared — which is exactly the contention the multi-accelerator
// scenarios measure. Stream contexts are created lazily on first use.
//
// Stats cover everything paper Table IV reports: translation count and mean
// latency, PTW count and mean latency, uTLB lookups/misses, and the
// aggregate translation stall time used to compute overhead percentages.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/port.hh"
#include "smmu/page_table.hh"
#include "smmu/tlb.hh"
#include "sim/fault_injector.hh"
#include "sim/random.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys::smmu {

struct SmmuParams {
    bool enabled = true;
    std::size_t utlb_entries = 16;
    unsigned utlb_assoc = 16; ///< fully associative by default
    std::size_t tlb_entries = 1024;
    unsigned tlb_assoc = 4;
    double utlb_hit_latency_ns = 1.0;
    double tlb_hit_latency_ns = 3.0;
    std::size_t walk_slots = 4;
    std::size_t pwc_entries = 64;
    std::size_t max_pending = 64;
    /// Walker PTE reads bypass the cache hierarchy (DRAM-latency walks, as
    /// real SMMUs without a translation-walk cache behave).
    bool walker_uncacheable = true;

    void validate() const;
};

class Smmu final : public SimObject,
                   private mem::Responder,
                   private mem::Requestor {
  public:
    Smmu(Simulator& sim, std::string name, const SmmuParams& params,
         PageTable& table, mem::BackingStore& store);

    /// Device-facing port (root complex binds its mem_side here).
    [[nodiscard]] mem::ResponsePort& dev_side() noexcept { return dev_port_; }
    /// Fabric-facing port (toward IOCache / MemBus).
    [[nodiscard]] mem::RequestPort& mem_side() noexcept { return mem_port_; }

    /// Route packets stamped with stream id `from` (normally the PCIe
    /// requester id) to translation stream `to`. Unmapped ids map to
    /// themselves, so calling this is only needed to share or renumber
    /// contexts.
    void map_stream(std::uint32_t from, std::uint32_t to);

    /// Per-stream translation context: a private micro-TLB plus stream
    /// stats ("<smmu>.stream<N>.*" in the registry).
    struct StreamCtx {
        StreamCtx(stats::Registry& reg, const std::string& prefix,
                  const SmmuParams& p)
            : utlb(p.utlb_entries, p.utlb_assoc),
              group(reg, prefix),
              translations(group, "translations",
                           "requests translated on this stream"),
              ptws(group, "ptws", "page-table walks started by this stream"),
              utlb_lookups(group, "utlb_lookups", "stream micro-TLB lookups",
                           [this] { return double(utlb.lookups()); }),
              utlb_misses(group, "utlb_misses", "stream micro-TLB misses",
                          [this] { return double(utlb.misses()); })
        {
        }

        Tlb utlb;
        stats::Group group;
        stats::Scalar translations;
        stats::Scalar ptws;
        stats::ValueFn utlb_lookups;
        stats::ValueFn utlb_misses;
    };

    /// Context for `stream` (created on demand).
    [[nodiscard]] StreamCtx& stream_ctx(std::uint32_t stream);
    /// Number of stream contexts instantiated so far.
    [[nodiscard]] std::size_t stream_count() const noexcept
    {
        return streams_.size();
    }

    // --- Table IV probes ----------------------------------------------------
    [[nodiscard]] std::uint64_t translations() const noexcept
    {
        return translations_;
    }
    [[nodiscard]] double total_translation_ns() const noexcept
    {
        return total_translation_ns_;
    }
    [[nodiscard]] std::uint64_t ptw_count() const noexcept
    {
        return ptw_count_;
    }
    [[nodiscard]] double total_ptw_ns() const noexcept
    {
        return total_ptw_ns_;
    }
    /// Default stream's micro-TLB (untagged traffic only — RC-stamped
    /// device traffic lands on stream contexts >= 1; use utlb_lookups() /
    /// utlb_misses() for the all-stream totals Table IV reports). Stream 0
    /// is created eagerly, so this is always valid.
    [[nodiscard]] const Tlb& utlb() const { return streams_.at(0)->utlb; }
    /// Micro-TLB lookups summed over every stream context.
    [[nodiscard]] std::uint64_t utlb_lookups() const noexcept
    {
        std::uint64_t n = 0;
        for (const auto& [id, ctx] : streams_) {
            n += ctx->utlb.lookups();
        }
        return n;
    }
    /// Micro-TLB misses summed over every stream context.
    [[nodiscard]] std::uint64_t utlb_misses() const noexcept
    {
        std::uint64_t n = 0;
        for (const auto& [id, ctx] : streams_) {
            n += ctx->utlb.misses();
        }
        return n;
    }
    [[nodiscard]] const Tlb& main_tlb() const noexcept { return tlb_; }

    /// One recorded translation fault (seeded unmapped-page event). The log
    /// is bounded (kMaxFaultRecords); the count lives in the stats.
    struct FaultRecord {
        Tick tick = 0;
        std::uint32_t stream = 0;
        Addr va = 0;
        std::uint8_t is_write = 0;
    };
    static constexpr std::size_t kMaxFaultRecords = 64;

    /// Recorded translation faults (empty unless the plan seeds them).
    [[nodiscard]] const std::vector<FaultRecord>& fault_records() const
    {
        static const std::vector<FaultRecord> none;
        return fault_ != nullptr ? fault_->records : none;
    }

    /// Checkpoint/restore: TLBs, in-flight walks, pending waiter chains and
    /// the page-walk cache. Stream contexts are re-created on load (before
    /// the global stats section restores their counters).
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    // mem::Responder (dev side)
    bool recv_req(mem::PacketPtr& pkt) override;
    void retry_resp() override { dev_resp_q_.retry(); }

    // mem::Requestor (mem side)
    bool recv_resp(mem::PacketPtr& pkt) override;
    void retry_req() override { mem_q_.retry(); }

    /// One request waiting on a page-table walk. Nodes live in a
    /// fixed-size pool (`pending_pool_`, max_pending slots, allocated once)
    /// and chain into per-VPN FIFO lists through `next` — the walk-pending
    /// bookkeeping does zero heap work in steady state, where the old
    /// `unordered_map<vpn, vector>` allocated a node and a vector per
    /// coalesced walk.
    struct PendingPkt {
        mem::PacketPtr pkt;
        Tick arrived = 0;
        std::uint32_t stream = 0;
        std::int32_t next = -1; ///< pool index of the next waiter / free node
    };

    /// One in-flight VPN (walking or queued for a slot) plus its waiter
    /// list. Records live in a small flat array scanned linearly — bounded
    /// by max_pending, typically a handful — and are swap-removed on
    /// completion (lookup is by exact VPN, so order is irrelevant).
    struct WalkRecord {
        std::uint64_t vpn = 0;
        std::int32_t head = -1; ///< first waiter (issue order)
        std::int32_t tail = -1; ///< last waiter
    };

    struct Walk {
        std::uint64_t vpn = 0;
        unsigned level = 0;
        Addr table = 0;
        Tick started = 0;
        bool active = false;
    };

    [[nodiscard]] std::uint32_t effective_stream(const mem::Packet& pkt) const;
    void finish_translation(StreamCtx& ctx, mem::PacketPtr pkt,
                            std::uint64_t ppn, Tick arrived, Tick done_at);
    void start_walk_or_queue(std::uint64_t vpn);
    void start_walk(unsigned slot, std::uint64_t vpn);
    void issue_pte_read(unsigned slot);
    void walker_response(const mem::Packet& pkt);
    void complete_walk(unsigned slot, std::uint64_t ppn);
    void maybe_unblock();

    // Page-walk cache: (level, va-prefix) -> table base address.
    struct PwcKey {
        unsigned level;
        std::uint64_t prefix;
        bool operator==(const PwcKey&) const = default;
    };
    struct PwcKeyHash {
        std::size_t operator()(const PwcKey& k) const noexcept
        {
            return std::hash<std::uint64_t>()(k.prefix * 4 + k.level);
        }
    };
    [[nodiscard]] static std::uint64_t pwc_prefix(std::uint64_t vpn,
                                                  unsigned level)
    {
        // VPN bits that select tables down to (and including) `level`.
        return vpn >> (kBitsPerLevel * (kLevels - 1 - level));
    }
    void pwc_insert(unsigned level, std::uint64_t prefix, Addr table);
    [[nodiscard]] const Addr* pwc_find(unsigned level, std::uint64_t prefix);

    SmmuParams params_;
    // Hit latencies in ticks, precomputed off the lookup fast path.
    Tick utlb_hit_ticks_ = 0;
    Tick tlb_hit_ticks_ = 0;
    PageTable* table_;
    mem::BackingStore* store_;

    mem::ResponsePort dev_port_;
    mem::RequestPort mem_port_;
    mem::PacketQueue dev_resp_q_;
    mem::PacketQueue mem_q_;

    Tlb tlb_; ///< main TLB, shared across streams
    /// Per-stream contexts (stable addresses: stats self-register).
    std::map<std::uint32_t, std::unique_ptr<StreamCtx>> streams_;
    /// One-entry stream_ctx() memo (contexts are never destroyed).
    StreamCtx* last_ctx_ = nullptr;
    std::uint32_t last_stream_ = 0;
    std::unordered_map<std::uint32_t, std::uint32_t> stream_remap_;

    [[nodiscard]] WalkRecord* find_walk_record(std::uint64_t vpn);
    [[nodiscard]] std::int32_t alloc_pending_node();
    void free_pending_node(std::int32_t idx);

    std::vector<PendingPkt> pending_pool_; ///< max_pending fixed slots
    std::int32_t pending_free_ = -1;       ///< free-list head in the pool
    std::vector<WalkRecord> walk_records_; ///< in-flight VPNs + waiter lists
    RingBuffer<std::uint64_t> walk_queue_; ///< VPNs awaiting a walk slot
    std::vector<Walk> walks_;              ///< indexed by slot (== pkt tag)
    std::uint32_t walker_requestor_;
    mem::PacketPool* pkt_pool_ = nullptr; ///< resolved once (walker reads)
    std::size_t pending_count_ = 0;
    bool blocked_upstream_ = false;

    std::unordered_map<PwcKey, std::pair<Addr, std::uint64_t>, PwcKeyHash>
        pwc_;
    std::uint64_t pwc_clock_ = 0;

    /// Per-stream seeded translation-fault source: a private Bernoulli
    /// stream (device_stream_seed(site, stream) — topology-keyed, so the
    /// draw order is independent of ACCESYS_THREADS) plus the explicit
    /// one-shot events targeting this stream.
    struct StreamFault {
        Rng rng{0};
        std::vector<Tick> ticks; ///< one-shot explicit faults
        std::size_t idx = 0;
    };

    /// SMMU fault stats: registered only when the plan seeds translation
    /// faults, so link-only fault plans leave the dump unchanged.
    struct SmmuFaultStats {
        explicit SmmuFaultStats(stats::Group& g)
            : faults(g, "trans_faults",
                     "seeded translation faults (unmapped-page events)"),
              faulted_reads(g, "faulted_reads",
                            "reads answered with a poisoned response"),
              dropped_writes(g, "dropped_writes",
                             "posted writes dropped at a translation fault")
        {
        }
        stats::Scalar faults;
        stats::Scalar faulted_reads;
        stats::Scalar dropped_writes;
    };

    /// Allocated iff the fault plan actually seeds SMMU faults (rate or
    /// explicit events), not merely when any plan is active.
    struct SmmuFaultState {
        SmmuFaultState(stats::Group& g, FaultInjector& fi,
                       const std::string& site_name);
        FaultInjector* fi = nullptr;
        std::string site_name;
        unsigned site_id = 0;
        double rate = 0.0;
        std::map<std::uint32_t, StreamFault> streams; ///< lazily created
        std::vector<FaultRecord> records;
        SmmuFaultStats stats;
    };
    std::unique_ptr<SmmuFaultState> fault_;

    [[nodiscard]] StreamFault& stream_fault(std::uint32_t stream);
    /// Deterministic per-request fault decision for `stream` (explicit
    /// one-shot events first, then the Bernoulli stream — always consumed,
    /// so the draw count per request is fixed).
    bool fault_roll(std::uint32_t stream);

    // Counters mirrored as stats below.
    std::uint64_t translations_ = 0;
    double total_translation_ns_ = 0.0;
    std::uint64_t ptw_count_ = 0;
    double total_ptw_ns_ = 0.0;

    stats::Scalar st_translations_{stat_group(), "translations",
                                   "requests translated"};
    stats::Average st_trans_ns_{stat_group(), "trans_ns",
                                "per-request translation latency (ns)"};
    stats::Scalar st_ptw_{stat_group(), "ptw_count", "page-table walks"};
    stats::Average st_ptw_ns_{stat_group(), "ptw_ns",
                              "per-walk latency (ns)"};
    stats::Scalar st_pte_reads_{stat_group(), "pte_reads",
                                "PTE memory reads issued"};
    stats::ValueFn st_utlb_lookups_{stat_group(), "utlb_lookups",
                                    "micro-TLB lookups (all streams)",
                                    [this] {
                                        return double(utlb_lookups());
                                    }};
    stats::ValueFn st_utlb_misses_{stat_group(), "utlb_misses",
                                   "micro-TLB misses (all streams)",
                                   [this] {
                                       return double(utlb_misses());
                                   }};
    stats::ValueFn st_tlb_lookups_{stat_group(), "tlb_lookups",
                                   "main TLB lookups",
                                   [this] { return double(tlb_.lookups()); }};
    stats::ValueFn st_tlb_misses_{stat_group(), "tlb_misses",
                                  "main TLB misses",
                                  [this] { return double(tlb_.misses()); }};
    stats::Scalar st_bypassed_{stat_group(), "bypassed",
                               "requests forwarded without translation"};
};

} // namespace accesys::smmu
