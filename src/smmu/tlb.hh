// Set-associative TLB with LRU replacement (used for both the micro-TLB and
// the main SMMU TLB; only entry counts/associativity differ).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys {
class Ckpt;
}

namespace accesys::smmu {

class Tlb {
  public:
    Tlb(std::size_t entries, unsigned assoc)
        : entries_(entries), assoc_(assoc)
    {
        require_cfg(entries > 0 && assoc > 0 && entries % assoc == 0,
                    "TLB entries must be a positive multiple of assoc");
        require_cfg(is_pow2(entries / assoc),
                    "TLB set count must be a power of two");
        set_mask_ = entries / assoc - 1;
        slots_.resize(entries);
    }

    /// VPN -> PPN lookup; updates LRU and hit/miss counters. An MRU memo
    /// short-circuits the way scan for the streaming-DMA common case
    /// (long same-page bursts) with identical stat/LRU behaviour.
    [[nodiscard]] std::optional<std::uint64_t> lookup(std::uint64_t vpn)
    {
        ++lookups_;
        if (mru_ != nullptr && mru_->valid && mru_->vpn == vpn) {
            mru_->lru = ++clock_;
            ++hits_;
            return mru_->ppn;
        }
        Slot* base = set_base(vpn);
        for (unsigned w = 0; w < assoc_; ++w) {
            if (base[w].valid && base[w].vpn == vpn) {
                base[w].lru = ++clock_;
                ++hits_;
                mru_ = &base[w];
                return base[w].ppn;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /// Probe without touching counters or LRU state.
    [[nodiscard]] bool contains(std::uint64_t vpn) const
    {
        const Slot* base = set_base(vpn);
        for (unsigned w = 0; w < assoc_; ++w) {
            if (base[w].valid && base[w].vpn == vpn) {
                return true;
            }
        }
        return false;
    }

    void insert(std::uint64_t vpn, std::uint64_t ppn)
    {
        Slot* base = set_base(vpn);
        Slot* victim = base;
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].lru < victim->lru) {
                victim = &base[w];
            }
        }
        if (victim->valid) {
            ++evictions_;
        }
        *victim = Slot{vpn, ppn, ++clock_, true};
    }

    void flush()
    {
        for (auto& s : slots_) {
            s.valid = false;
        }
        mru_ = nullptr;
    }

    /// Checkpoint/restore slots, LRU clock and counters (defined in
    /// smmu.cc; the MRU memo resets on load).
    void serialize(Ckpt& ar);

    [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
    [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
    [[nodiscard]] std::uint64_t evictions() const noexcept
    {
        return evictions_;
    }

  private:
    struct Slot {
        std::uint64_t vpn = 0;
        std::uint64_t ppn = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    [[nodiscard]] Slot* set_base(std::uint64_t vpn)
    {
        return &slots_[(vpn & set_mask_) * assoc_];
    }
    [[nodiscard]] const Slot* set_base(std::uint64_t vpn) const
    {
        return &slots_[(vpn & set_mask_) * assoc_];
    }

    std::size_t entries_;
    unsigned assoc_;
    std::size_t set_mask_ = 0; ///< sets - 1, hoisted off the lookup path
    std::vector<Slot> slots_;
    Slot* mru_ = nullptr; ///< last hit (slots_ never reallocates)
    std::uint64_t clock_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace accesys::smmu
