#include "smmu/smmu.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::smmu {

void Tlb::serialize(Ckpt& ar)
{
    const std::size_t n_slots = slots_.size();
    ar.io(clock_, lookups_, hits_, misses_, evictions_);
    ar.pod_vec(slots_);
    ensure(slots_.size() == n_slots,
           "TLB geometry changed across checkpoint");
    if (ar.loading()) {
        mru_ = nullptr;
    }
}

void SmmuParams::validate() const
{
    require_cfg(walk_slots >= 1 && walk_slots <= 64,
                "SMMU walk slots must be in 1..64");
    require_cfg(max_pending >= walk_slots,
                "SMMU max_pending must cover the walk slots");
}

Smmu::Smmu(Simulator& sim, std::string name, const SmmuParams& params,
           PageTable& table, mem::BackingStore& store)
    : SimObject(sim, std::move(name)),
      params_(params),
      table_(&table),
      store_(&store),
      dev_port_(this->name() + ".dev_side", *this),
      mem_port_(this->name() + ".mem_side", *this),
      dev_resp_q_(sim, this->name() + ".dev_resp_q",
                  [](void* s, mem::PacketPtr& pkt) {
                      return static_cast<Smmu*>(s)->dev_port_.send_resp(pkt);
                  },
                  this),
      mem_q_(sim, this->name() + ".mem_q",
             [](void* s, mem::PacketPtr& pkt) {
                 return static_cast<Smmu*>(s)->mem_port_.send_req(pkt);
             },
             this),
      tlb_(params.tlb_entries, params.tlb_assoc),
      walks_(params.walk_slots),
      walker_requestor_(mem::alloc_requestor_id())
{
    params_.validate();
    pkt_pool_ = &mem::packet_pool();
    // Walk-pending pool: max_pending bounds the waiters that can exist at
    // once, so the node pool and record array never grow after this.
    pending_pool_.resize(params_.max_pending);
    for (std::size_t i = 0; i < pending_pool_.size(); ++i) {
        pending_pool_[i].next =
            i + 1 < pending_pool_.size() ? static_cast<std::int32_t>(i + 1)
                                         : -1;
    }
    pending_free_ = 0;
    walk_records_.reserve(params_.max_pending);
    dev_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<Smmu*>(s)->recv_req(pkt);
        },
        [](void* s) { static_cast<Smmu*>(s)->retry_resp(); }, this);
    mem_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<Smmu*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<Smmu*>(s)->retry_req(); }, this);
    utlb_hit_ticks_ = ticks_from_ns(params_.utlb_hit_latency_ns);
    tlb_hit_ticks_ = ticks_from_ns(params_.tlb_hit_latency_ns);
    (void)stream_ctx(0); // default stream exists from the start
    if (FaultInjector* fi = sim.fault_injector();
        fi != nullptr && (fi->plan().smmu_fault_rate > 0.0 ||
                          fi->has_smmu_events())) {
        fault_ = std::make_unique<SmmuFaultState>(stat_group(), *fi,
                                                  this->name());
    }
}

Smmu::SmmuFaultState::SmmuFaultState(stats::Group& g, FaultInjector& fi_,
                                     const std::string& name)
    : fi(&fi_), site_name(name), stats(g)
{
    site_id = fi->register_site(site_name);
    rate = fi->plan().smmu_fault_rate;
}

Smmu::StreamFault& Smmu::stream_fault(std::uint32_t stream)
{
    auto it = fault_->streams.find(stream);
    if (it == fault_->streams.end()) {
        it = fault_->streams.emplace(stream, StreamFault{}).first;
        StreamFault& sf = it->second;
        sf.rng.reseed(fault_->fi->device_stream_seed(fault_->site_id,
                                                     stream));
        fault_->fi->collect_smmu(fault_->site_name, stream, sf.ticks);
    }
    return it->second;
}

bool Smmu::fault_roll(std::uint32_t stream)
{
    StreamFault& sf = stream_fault(stream);
    bool hit = false;
    if (sf.idx < sf.ticks.size() && now() >= sf.ticks[sf.idx]) {
        ++sf.idx;
        hit = true;
    }
    if (fault_->rate > 0.0) {
        // Always consume the stream: one draw per translated request, so
        // explicit events never shift the Bernoulli sequence.
        const bool rolled = sf.rng.chance(fault_->rate);
        hit = hit || rolled;
    }
    return hit;
}

void Smmu::map_stream(std::uint32_t from, std::uint32_t to)
{
    stream_remap_[from] = to;
}

std::uint32_t Smmu::effective_stream(const mem::Packet& pkt) const
{
    if (stream_remap_.empty()) {
        return pkt.stream(); // no remaps configured: skip the map probe
    }
    const auto it = stream_remap_.find(pkt.stream());
    return it == stream_remap_.end() ? pkt.stream() : it->second;
}

Smmu::StreamCtx& Smmu::stream_ctx(std::uint32_t stream)
{
    // Memoise the last stream: device traffic arrives in long same-stream
    // bursts, and contexts are never destroyed, so the pointer stays valid.
    if (last_ctx_ != nullptr && last_stream_ == stream) {
        return *last_ctx_;
    }
    auto it = streams_.find(stream);
    if (it == streams_.end()) {
        it = streams_
                 .emplace(stream,
                          std::make_unique<StreamCtx>(
                              sim().stats(),
                              name() + ".stream" + std::to_string(stream),
                              params_))
                 .first;
    }
    last_stream_ = stream;
    last_ctx_ = it->second.get();
    return *last_ctx_;
}

bool Smmu::recv_req(mem::PacketPtr& pkt)
{
    if (!params_.enabled || !pkt->flags.needs_translation) {
        ++st_bypassed_;
        mem_q_.push(std::move(pkt), now());
        return true;
    }

    if (pending_count_ >= params_.max_pending) {
        blocked_upstream_ = true;
        return false;
    }

    const Addr va = pkt->addr();
    if (va / kPageBytes != (pkt->end_addr() - 1) / kPageBytes) {
        panic(name(), ": request crosses a page: ", pkt->describe());
    }
    const std::uint64_t vpn = vpn_of(va);
    const Tick arrived = now();
    const std::uint32_t stream = effective_stream(*pkt);
    StreamCtx& ctx = stream_ctx(stream);

    if (fault_ != nullptr && fault_roll(stream)) {
        // Seeded translation fault (unmapped page): no walk happens. A
        // fault record is logged; reads complete poisoned (contained by
        // the requester's DMA engine), posted writes are dropped.
        ++fault_->stats.faults;
        if (fault_->records.size() < kMaxFaultRecords) {
            fault_->records.push_back(FaultRecord{
                now(), stream, va,
                static_cast<std::uint8_t>(pkt->is_write() ? 1 : 0)});
        }
        if (pkt->is_read() || !pkt->flags.posted) {
            ++fault_->stats.faulted_reads;
            pkt->make_response();
            pkt->flags.poisoned = true;
            dev_resp_q_.push(std::move(pkt), now() + tlb_hit_ticks_);
        } else {
            ++fault_->stats.dropped_writes;
            pkt.reset();
        }
        return true;
    }

    if (auto ppn = ctx.utlb.lookup(vpn); ppn.has_value()) {
        finish_translation(ctx, std::move(pkt), *ppn, arrived,
                           now() + utlb_hit_ticks_);
        return true;
    }

    if (auto ppn = tlb_.lookup(vpn); ppn.has_value()) {
        ctx.utlb.insert(vpn, *ppn);
        finish_translation(ctx, std::move(pkt), *ppn, arrived,
                           now() + tlb_hit_ticks_);
        return true;
    }

    // TLB miss: join (or start) a walk for this VPN.
    ++pending_count_;
    const std::int32_t node = alloc_pending_node();
    PendingPkt& p = pending_pool_[static_cast<std::size_t>(node)];
    p.pkt = std::move(pkt);
    p.arrived = arrived;
    p.stream = stream;
    p.next = -1;
    if (WalkRecord* rec = find_walk_record(vpn); rec != nullptr) {
        pending_pool_[static_cast<std::size_t>(rec->tail)].next = node;
        rec->tail = node;
    } else {
        walk_records_.push_back(WalkRecord{vpn, node, node});
        ++ctx.ptws;
        start_walk_or_queue(vpn);
    }
    return true;
}

Smmu::WalkRecord* Smmu::find_walk_record(std::uint64_t vpn)
{
    for (WalkRecord& rec : walk_records_) {
        if (rec.vpn == vpn) {
            return &rec;
        }
    }
    return nullptr;
}

std::int32_t Smmu::alloc_pending_node()
{
    ensure(pending_free_ >= 0, name(), ": pending pool exhausted");
    const std::int32_t idx = pending_free_;
    pending_free_ = pending_pool_[static_cast<std::size_t>(idx)].next;
    return idx;
}

void Smmu::free_pending_node(std::int32_t idx)
{
    PendingPkt& p = pending_pool_[static_cast<std::size_t>(idx)];
    p.pkt.reset();
    p.next = pending_free_;
    pending_free_ = idx;
}

void Smmu::finish_translation(StreamCtx& ctx, mem::PacketPtr pkt,
                              std::uint64_t ppn, Tick arrived, Tick done_at)
{
    const Addr pa = (ppn << kPageShift) | (pkt->addr() & (kPageBytes - 1));
    ++ctx.translations;
    pkt->record_translation(pa);

    ++translations_;
    ++st_translations_;
    const double lat_ns = ticks_to_ns(done_at - arrived);
    total_translation_ns_ += lat_ns;
    st_trans_ns_.sample(lat_ns);

    mem_q_.push(std::move(pkt), done_at);
}

void Smmu::start_walk_or_queue(std::uint64_t vpn)
{
    for (unsigned slot = 0; slot < walks_.size(); ++slot) {
        if (!walks_[slot].active) {
            start_walk(slot, vpn);
            return;
        }
    }
    walk_queue_.push_back(vpn);
}

void Smmu::start_walk(unsigned slot, std::uint64_t vpn)
{
    Walk& w = walks_[slot];
    w.active = true;
    w.vpn = vpn;
    w.started = now();
    w.level = 0;
    w.table = table_->root();

    // Page-walk cache: resume from the deepest cached level.
    for (unsigned lvl = kLevels - 2; lvl + 1 > 0; --lvl) {
        if (const Addr* t = pwc_find(lvl, pwc_prefix(vpn, lvl));
            t != nullptr) {
            w.level = lvl + 1;
            w.table = *t;
            break;
        }
    }

    ++ptw_count_;
    ++st_ptw_;
    issue_pte_read(slot);
}

void Smmu::issue_pte_read(unsigned slot)
{
    Walk& w = walks_[slot];
    const Addr va = w.vpn << kPageShift;
    const Addr pte_addr =
        w.table + static_cast<Addr>(level_index(va, w.level)) * 8;
    auto pkt = pkt_pool_->make_read(pte_addr, 8);
    pkt->set_requestor(walker_requestor_);
    pkt->set_tag(slot);
    pkt->flags.uncacheable = params_.walker_uncacheable;
    ++st_pte_reads_;
    mem_q_.push(std::move(pkt), now());
}

bool Smmu::recv_resp(mem::PacketPtr& pkt)
{
    if (pkt->requestor() == walker_requestor_) {
        walker_response(*pkt);
        return true;
    }
    dev_resp_q_.push(std::move(pkt), now());
    return true;
}

void Smmu::walker_response(const mem::Packet& pkt)
{
    const auto slot = static_cast<unsigned>(pkt.tag());
    ensure(slot < walks_.size() && walks_[slot].active, name(),
           ": stray walker response");
    Walk& w = walks_[slot];

    const auto pte = store_->read_obj<std::uint64_t>(pkt.addr());
    ensure((pte & kPteValid) != 0, name(), ": translation fault for VPN 0x",
           std::hex, w.vpn, " at level ", std::dec, w.level);
    const Addr next = pte & kPteAddrMask;

    if (w.level < kLevels - 1) {
        pwc_insert(w.level, pwc_prefix(w.vpn, w.level), next);
        w.table = next;
        ++w.level;
        issue_pte_read(slot);
        return;
    }
    complete_walk(slot, next >> kPageShift);
}

void Smmu::complete_walk(unsigned slot, std::uint64_t ppn)
{
    Walk& w = walks_[slot];
    const double walk_ns = ticks_to_ns(now() - w.started);
    total_ptw_ns_ += walk_ns;
    st_ptw_ns_.sample(walk_ns);

    tlb_.insert(w.vpn, ppn);

    WalkRecord* rec = find_walk_record(w.vpn);
    ensure(rec != nullptr, name(), ": walk with no waiters");
    for (std::int32_t idx = rec->head; idx >= 0;) {
        PendingPkt& waiting = pending_pool_[static_cast<std::size_t>(idx)];
        ensure(pending_count_ > 0, name(), ": pending underflow");
        --pending_count_;
        // Fill every waiting stream's micro-TLB, not just the initiator's —
        // but only once per stream, or coalesced same-page waiters would
        // stack duplicate lines and evict hot entries.
        StreamCtx& wctx = stream_ctx(waiting.stream);
        if (!wctx.utlb.contains(w.vpn)) {
            wctx.utlb.insert(w.vpn, ppn);
        }
        finish_translation(wctx, std::move(waiting.pkt), ppn,
                           waiting.arrived, now());
        const std::int32_t next = waiting.next;
        free_pending_node(idx);
        idx = next;
    }
    // Swap-remove the record: lookup is by exact VPN, order is irrelevant.
    *rec = walk_records_.back();
    walk_records_.pop_back();
    w.active = false;

    if (!walk_queue_.empty()) {
        const std::uint64_t next_vpn = walk_queue_.front();
        walk_queue_.pop_front();
        start_walk(slot, next_vpn);
    }
    maybe_unblock();
}

void Smmu::maybe_unblock()
{
    if (blocked_upstream_ && pending_count_ < params_.max_pending) {
        blocked_upstream_ = false;
        dev_port_.send_retry_req();
    }
}

void Smmu::pwc_insert(unsigned level, std::uint64_t prefix, Addr table)
{
    if (params_.pwc_entries == 0) {
        return;
    }
    const PwcKey key{level, prefix};
    pwc_[key] = {table, ++pwc_clock_};
    if (pwc_.size() > params_.pwc_entries) {
        // Evict the least recently used entry.
        auto lru = pwc_.begin();
        for (auto it = pwc_.begin(); it != pwc_.end(); ++it) {
            if (it->second.second < lru->second.second) {
                lru = it;
            }
        }
        pwc_.erase(lru);
    }
}

const Addr* Smmu::pwc_find(unsigned level, std::uint64_t prefix)
{
    const auto it = pwc_.find(PwcKey{level, prefix});
    if (it == pwc_.end()) {
        return nullptr;
    }
    it->second.second = ++pwc_clock_;
    return &it->second.first;
}

void Smmu::serialize(Ckpt& ar)
{
    // Stream contexts: create-on-load must happen before the global stats
    // section restores (it runs last), so their counters land in place.
    std::uint64_t n_streams = streams_.size();
    ar.io(n_streams);
    if (ar.saving()) {
        for (auto& [id, ctx] : streams_) {
            std::uint32_t sid = id;
            ar.io(sid);
            ctx->utlb.serialize(ar);
        }
    } else {
        // Restore lands either in a fresh process (only the default
        // stream exists; contexts are created here in snapshot order) or
        // in one that replayed earlier rounds of the identical dispatch
        // (the same streams already live, in the same creation order the
        // saving process registered them). Either way the live set must
        // converge on the snapshot's — a stream the snapshot never saw
        // means the replay diverged.
        for (std::uint64_t i = 0; i < n_streams; ++i) {
            std::uint32_t sid = 0;
            ar.io(sid);
            stream_ctx(sid).utlb.serialize(ar);
        }
        ensure(streams_.size() == n_streams, name(),
               ": restore into an SMMU whose live streams diverge from "
               "the snapshot");
        last_ctx_ = nullptr;
        last_stream_ = 0;
    }

    // Stream remaps (config-driven, but cheap to carry and verify).
    std::uint64_t n_remap = stream_remap_.size();
    ar.io(n_remap);
    if (ar.saving()) {
        std::vector<std::uint32_t> keys;
        keys.reserve(stream_remap_.size());
        for (const auto& [k, v] : stream_remap_) {
            keys.push_back(k);
        }
        std::sort(keys.begin(), keys.end());
        for (std::uint32_t k : keys) {
            std::uint32_t v = stream_remap_.at(k);
            ar.io(k, v);
        }
    } else {
        for (std::uint64_t i = 0; i < n_remap; ++i) {
            std::uint32_t k = 0;
            std::uint32_t v = 0;
            ar.io(k, v);
            stream_remap_[k] = v;
        }
    }

    tlb_.serialize(ar);

    // Walk-pending pool: preserve the exact slot layout (indices live in
    // records and chains).
    ar.io(pending_free_, pending_count_, blocked_upstream_);
    const std::size_t pool_slots = pending_pool_.size();
    std::uint64_t n_pool = pool_slots;
    ar.io(n_pool);
    ensure(n_pool == pool_slots, name(),
           ": pending-pool size changed across checkpoint");
    for (auto& p : pending_pool_) {
        std::uint8_t has_pkt = p.pkt != nullptr ? 1 : 0;
        ar.io(has_pkt, p.arrived, p.stream, p.next);
        if (has_pkt != 0) {
            mem::ckpt_packet(ar, p.pkt);
        } else if (ar.loading()) {
            p.pkt.reset();
        }
    }
    ar.pod_vec(walk_records_);

    std::uint64_t n_wq = walk_queue_.size();
    ar.io(n_wq);
    if (ar.loading()) {
        walk_queue_.clear();
    }
    for (std::uint64_t i = 0; i < n_wq; ++i) {
        std::uint64_t vpn = ar.saving() ? walk_queue_[i] : 0;
        ar.io(vpn);
        if (ar.loading()) {
            walk_queue_.push_back(vpn);
        }
    }

    for (Walk& w : walks_) {
        ar.io(w.vpn, w.level, w.table, w.started, w.active);
    }

    // Page-walk cache (sorted for byte-stable checkpoints).
    ar.io(pwc_clock_);
    std::uint64_t n_pwc = pwc_.size();
    ar.io(n_pwc);
    if (ar.saving()) {
        std::vector<PwcKey> keys;
        keys.reserve(pwc_.size());
        for (const auto& [k, v] : pwc_) {
            keys.push_back(k);
        }
        std::sort(keys.begin(), keys.end(),
                  [](const PwcKey& a, const PwcKey& b) {
                      return a.level != b.level ? a.level < b.level
                                                : a.prefix < b.prefix;
                  });
        for (const PwcKey& k : keys) {
            auto& v = pwc_.at(k);
            std::uint32_t level = k.level;
            std::uint64_t prefix = k.prefix;
            ar.io(level, prefix, v.first, v.second);
        }
    } else {
        pwc_.clear();
        for (std::uint64_t i = 0; i < n_pwc; ++i) {
            std::uint32_t level = 0;
            std::uint64_t prefix = 0;
            Addr table = 0;
            std::uint64_t stamp = 0;
            ar.io(level, prefix, table, stamp);
            pwc_[PwcKey{level, prefix}] = {table, stamp};
        }
    }

    ar.io(translations_, total_translation_ns_, ptw_count_, total_ptw_ns_);

    dev_port_.serialize(ar);
    mem_port_.serialize(ar);
    dev_resp_q_.serialize(ar);
    mem_q_.serialize(ar);

    if (fault_ != nullptr) {
        // Config-keyed presence (plan seeds SMMU faults). std::map keeps
        // the stream order sorted, so checkpoint bytes are stable.
        std::uint64_t n_sf = fault_->streams.size();
        ar.io(n_sf);
        if (ar.saving()) {
            for (auto& [sid, sf] : fault_->streams) {
                std::uint32_t id = sid;
                ar.io(id, sf.idx);
                sf.rng.serialize(ar);
            }
        } else {
            fault_->streams.clear();
            for (std::uint64_t i = 0; i < n_sf; ++i) {
                std::uint32_t id = 0;
                ar.io(id);
                StreamFault& sf = stream_fault(id);
                ar.io(sf.idx);
                sf.rng.serialize(ar);
            }
        }
        ar.pod_vec(fault_->records);
    }
}

void Smmu::report_occupancy(std::string& out) const
{
    std::size_t active_walks = 0;
    for (const Walk& w : walks_) {
        active_walks += w.active ? 1 : 0;
    }
    if (pending_count_ == 0 && active_walks == 0 && walk_queue_.empty() &&
        dev_resp_q_.empty() && mem_q_.empty()) {
        return;
    }
    out += "  " + name() + ": pending=" + std::to_string(pending_count_) +
           ", walks=" + std::to_string(active_walks) +
           ", walk_queue=" + std::to_string(walk_queue_.size()) +
           ", dev_resp_q=" + std::to_string(dev_resp_q_.size()) +
           ", mem_q=" + std::to_string(mem_q_.size()) +
           (blocked_upstream_ ? ", blocking upstream" : "") + "\n";
}

} // namespace accesys::smmu
