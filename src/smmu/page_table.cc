#include "smmu/page_table.hh"

namespace accesys::smmu {

PageTable::PageTable(mem::BackingStore& store, Addr root_base,
                     Addr alloc_base, Addr alloc_limit)
    : store_(&store),
      root_base_(root_base),
      alloc_next_(alloc_base),
      alloc_limit_(alloc_limit)
{
    require_cfg(root_base % kPageBytes == 0, "page table root not aligned");
    require_cfg(alloc_base % kPageBytes == 0 && alloc_limit > alloc_base,
                "bad page-table arena");
    // Zero the root table so absent entries read as invalid.
    const std::uint8_t zeros[kPageBytes] = {};
    store_->write(root_base_, zeros, kPageBytes);
}

Addr PageTable::alloc_table()
{
    ensure(alloc_next_ + kPageBytes <= alloc_limit_,
           "page-table arena exhausted");
    const Addr t = alloc_next_;
    alloc_next_ += kPageBytes;
    ++tables_allocated_;
    const std::uint8_t zeros[kPageBytes] = {};
    store_->write(t, zeros, kPageBytes);
    return t;
}

void PageTable::map(Addr va, Addr pa, std::uint64_t size)
{
    ensure(va % kPageBytes == 0 && pa % kPageBytes == 0,
           "map addresses must be page-aligned");
    for (std::uint64_t off = 0; off < size; off += kPageBytes) {
        Addr table = root_base_;
        const Addr v = va + off;
        for (unsigned lvl = 0; lvl < kLevels - 1; ++lvl) {
            const Addr pte_addr =
                table + static_cast<Addr>(level_index(v, lvl)) * 8;
            std::uint64_t pte = store_->read_obj<std::uint64_t>(pte_addr);
            if ((pte & kPteValid) == 0) {
                const Addr next = alloc_table();
                pte = (next & kPteAddrMask) | kPteValid;
                store_->write_obj(pte_addr, pte);
            }
            table = pte & kPteAddrMask;
        }
        const Addr leaf_addr =
            table + static_cast<Addr>(level_index(v, kLevels - 1)) * 8;
        const std::uint64_t had =
            store_->read_obj<std::uint64_t>(leaf_addr);
        if ((had & kPteValid) == 0) {
            ++pages_mapped_;
        }
        store_->write_obj(leaf_addr,
                          ((pa + off) & kPteAddrMask) | kPteValid);
    }
}

Addr PageTable::translate(Addr va) const
{
    Addr table = root_base_;
    for (unsigned lvl = 0; lvl < kLevels; ++lvl) {
        const Addr pte_addr =
            table + static_cast<Addr>(level_index(va, lvl)) * 8;
        const std::uint64_t pte = store_->read_obj<std::uint64_t>(pte_addr);
        ensure((pte & kPteValid) != 0, "translation fault at VA 0x", std::hex,
               va, " level ", std::dec, lvl);
        table = pte & kPteAddrMask;
    }
    return table | (va & (kPageBytes - 1));
}

} // namespace accesys::smmu
