// Four-level page table (4 KB granule, 48-bit VA, ARM-flavoured layout).
//
// Tables live in the functional BackingStore, so the SMMU's page-table
// walker performs *real* memory reads through the simulated fabric — walk
// latency is produced by the memory system, not a constant.
//
// Layout per level: 9 VA bits each — L0[47:39] L1[38:30] L2[29:21] L3[20:12].
// PTE: bit 0 = valid, bits [51:12] = physical address of next table / page.
#pragma once

#include <cstdint>

#include "mem/backing_store.hh"
#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::smmu {

inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageBytes = 1ULL << kPageShift;
inline constexpr unsigned kLevels = 4;
inline constexpr unsigned kBitsPerLevel = 9;
inline constexpr std::uint64_t kPteValid = 1ULL;
inline constexpr std::uint64_t kPteAddrMask = 0x000FFFFFFFFFF000ULL;

[[nodiscard]] constexpr std::uint64_t vpn_of(Addr va)
{
    return va >> kPageShift;
}

/// Index of `va` within the level-`lvl` table (lvl 0 = root).
[[nodiscard]] constexpr unsigned level_index(Addr va, unsigned lvl)
{
    const unsigned shift = kPageShift + kBitsPerLevel * (kLevels - 1 - lvl);
    return static_cast<unsigned>((va >> shift) & ((1U << kBitsPerLevel) - 1));
}

class PageTable {
  public:
    /// `root_base` — physical address of the root (L0) table;
    /// `alloc_base`/`alloc_limit` — bump-allocation arena for lower tables.
    /// All must lie within simulated host memory.
    PageTable(mem::BackingStore& store, Addr root_base, Addr alloc_base,
              Addr alloc_limit);

    /// Map [va, va+size) to [pa, pa+size); both must be page-aligned.
    void map(Addr va, Addr pa, std::uint64_t size);

    /// Identity-map [addr, addr+size) (VA == PA). Used by the system
    /// builder so functional data can be addressed uniformly while
    /// translation *timing* remains fully modelled.
    void map_identity(Addr addr, std::uint64_t size) { map(addr, addr, size); }

    /// Functional walk (no timing) — for tests and sanity checks.
    [[nodiscard]] Addr translate(Addr va) const;

    [[nodiscard]] Addr root() const noexcept { return root_base_; }
    [[nodiscard]] std::uint64_t pages_mapped() const noexcept
    {
        return pages_mapped_;
    }
    [[nodiscard]] std::uint64_t tables_allocated() const noexcept
    {
        return tables_allocated_;
    }

  private:
    [[nodiscard]] Addr alloc_table();

    mem::BackingStore* store_;
    Addr root_base_;
    Addr alloc_next_;
    Addr alloc_limit_;
    std::uint64_t pages_mapped_ = 0;
    std::uint64_t tables_allocated_ = 0;
};

} // namespace accesys::smmu
