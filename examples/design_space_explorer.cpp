// Design-space exploration: sweeps PCIe bandwidth x memory technology for a
// GEMM workload and prints the efficiency frontier — the co-design use case
// the paper's framework targets (§I contribution 1).
//
//   $ ./design_space_explorer [matrix-size]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/runner.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    const std::uint32_t size =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 512;
    const workload::GemmSpec spec{size, size, size, 7};

    const std::vector<double> pcie = {2, 4, 8, 16, 32};
    const std::vector<std::string> mems = {"DDR4", "DDR5", "GDDR6", "HBM2"};

    std::printf("GEMM %ux%ux%u throughput (GMAC/s) across the design space\n\n",
                size, size, size);
    std::printf("%10s", "PCIe\\mem");
    for (const auto& m : mems) {
        std::printf(" %9s", m.c_str());
    }
    std::printf("\n");

    double best = 0;
    std::string best_label;
    for (const double bw : pcie) {
        std::printf("%8.0fGB", bw);
        for (const auto& m : mems) {
            core::SystemConfig cfg = core::SystemConfig::paper_default();
            cfg.set_host_dram(m);
            cfg.set_pcie_target_gbps(bw);
            core::System sys(cfg);
            core::Runner runner(sys);
            const auto res = runner.run_gemm(spec, core::Placement::host);
            const double gmacs = res.gmacs(spec);
            std::printf(" %9.1f", gmacs);
            if (gmacs > best) {
                best = gmacs;
                best_label = m + " @ " + std::to_string(bw) + " GB/s";
            }
        }
        std::printf("\n");
    }

    // Device-side memory reference point.
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.set_devmem("HBM2");
    core::System sys(cfg);
    core::Runner runner(sys);
    const auto dev = runner.run_gemm(spec, core::Placement::devmem);

    std::printf("\nbest host config : %s (%.1f GMAC/s)\n", best_label.c_str(),
                best);
    std::printf("DevMem reference : HBM2 device-side (%.1f GMAC/s)\n",
                dev.gmacs(spec));
    std::printf("host/devmem gap  : %.0f%%\n", 100.0 * best / dev.gmacs(spec));
    return 0;
}
