// PCIe tuning walkthrough: shows how the framework's observability (stats
// registry, link utilisation, SMMU counters) guides interconnect tuning —
// lane count, packet size and SMMU on/off — for one workload.
//
//   $ ./pcie_tuning
#include <cstdio>

#include "core/runner.hh"

using namespace accesys;

namespace {

void report(const char* label, core::SystemConfig cfg)
{
    const workload::GemmSpec spec{256, 256, 256, 7};
    core::System sys(cfg);
    core::Runner runner(sys);
    const auto res = runner.run_gemm(spec, core::Placement::host);
    std::printf("%-34s %8.3f ms  %6.1f GMAC/s  link-util %4.0f%%  "
                "walks %5.0f\n",
                label, res.ms(), res.gmacs(spec),
                100.0 * sys.pcie_uplink().utilization(0),
                sys.stat("smmu.ptw_count"));
}

} // namespace

int main()
{
    std::printf("256^3 GEMM, DDR3-1600 host memory — tuning the interconnect\n\n");

    core::SystemConfig cfg = core::SystemConfig::paper_default();
    report("baseline (Gen2 x4, 256 B)", cfg);

    cfg = core::SystemConfig::paper_default();
    cfg.pcie.lanes = 16;
    report("more lanes (Gen2 x16)", cfg);

    cfg = core::SystemConfig::paper_default();
    cfg.pcie.gen = pcie::Gen::gen4;
    cfg.pcie.lane_gbps = 16.0;
    report("faster gen (Gen4 x4)", cfg);

    cfg = core::SystemConfig::paper_default();
    cfg.set_packet_size(64);
    report("small packets (64 B)", cfg);

    cfg = core::SystemConfig::paper_default();
    cfg.set_packet_size(4096);
    report("huge packets (4096 B)", cfg);

    cfg = core::SystemConfig::paper_default();
    cfg.smmu.enabled = false;
    report("no SMMU (physical addressing)", cfg);

    cfg = core::SystemConfig::paper_default();
    cfg.access_mode = core::AccessMode::dm;
    report("DM mode (bypass caches)", cfg);

    std::printf("\nTakeaway: with the Table II baseline the link is the\n"
                "bottleneck — lanes/speed dominate; packet size shifts\n"
                "efficiency by tens of percent; translation is nearly free\n"
                "until the TLB thrashes (see bench_table4_translation).\n");
    return 0;
}
