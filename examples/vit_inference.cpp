// ViT inference end-to-end: offloads every GEMM of a Vision Transformer to
// the MatrixFlow accelerator and runs the Non-GEMM operators on the host
// CPU, printing the phase split the paper's §V-D analyses.
//
//   $ ./vit_inference [base|large|huge] [host|devmem] [pcie-GB/s]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/runner.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "base";
    const std::string place_name = argc > 2 ? argv[2] : "host";
    const double pcie_gbps = argc > 3 ? std::atof(argv[3]) : 8.0;

    const auto model = workload::VitConfig::by_name(model_name);
    const auto place = place_name == "devmem" ? core::Placement::devmem
                                              : core::Placement::host;

    core::SystemConfig cfg = core::SystemConfig::paper_default();
    if (place == core::Placement::devmem) {
        cfg.set_devmem("HBM2");
        cfg.set_packet_size(64);
        cfg.set_pcie_target_gbps(64.0, 16);
    } else {
        cfg.set_host_dram("DDR4");
        cfg.set_pcie_target_gbps(pcie_gbps);
    }

    const auto sum = workload::summarize(workload::lower_vit(model));
    std::printf("%s on %s memory (%.0f GB/s PCIe)\n", model.name.c_str(),
                place_name.c_str(),
                place == core::Placement::devmem ? 64.0 : pcie_gbps);
    std::printf("  %llu GEMM offloads (%.2f GMAC), %llu Non-GEMM ops "
                "(%.1f MiB streamed)\n",
                static_cast<unsigned long long>(sum.gemm_count),
                sum.gemm_macs / 1e9,
                static_cast<unsigned long long>(sum.vector_count),
                static_cast<double>(sum.vector_bytes) / (1 << 20));

    core::System sys(cfg);
    core::Runner runner(sys);
    const auto res = runner.run_vit(model, place);

    std::printf("\ninference time : %8.2f ms\n", res.ms());
    std::printf("  GEMM phase   : %8.2f ms (%.1f%%)\n",
                ticks_to_ms(res.gemm_ticks),
                100.0 * res.gemm_ticks / res.elapsed());
    std::printf("  NonGEMM phase: %8.2f ms (%.1f%%)\n",
                ticks_to_ms(res.nongemm_ticks),
                100.0 * res.nongemm_ticks / res.elapsed());
    std::printf("  other        : %8.2f ms\n", ticks_to_ms(res.other_ticks()));
    std::printf("PCIe payload   : %.1f MiB\n",
                (sys.stat("link_up.payload_bytes") +
                 sys.stat("link_dn.payload_bytes")) /
                    (1 << 20));
    std::printf("SA utilization : %.1f%%\n",
                100.0 * sys.accelerator().compute_busy_ticks() /
                    res.elapsed());
    return 0;
}
