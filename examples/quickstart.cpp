// Quickstart: build the Table II system, offload one verified GEMM to the
// MatrixFlow accelerator over PCIe, and print what happened.
//
//   $ ./quickstart [matrix-size]
//
// This exercises the full stack: driver descriptor + doorbell MMIO, DMA over
// the PCIe hierarchy, SMMU translation with real page-table walks, the
// coherent cache path (DC mode), and the systolic-array computation — whose
// result is bit-checked against a golden model.
#include <cstdio>
#include <cstdlib>

#include "core/runner.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    const std::uint32_t size =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;

    core::SystemConfig cfg = core::SystemConfig::paper_default();
    core::System sys(cfg);
    core::Runner runner(sys);

    const workload::GemmSpec spec{size, size, size, /*seed=*/42};
    std::printf("accesys quickstart: %ux%ux%u int8 GEMM over %s, %s\n",
                spec.m, spec.n, spec.k, "PCIe 2.0 x4",
                "DDR3-1600 host memory (paper Table II)\n");

    const auto res = runner.run_gemm(spec, core::Placement::host,
                                     /*verify=*/true);

    std::printf("simulated time : %.3f ms\n", res.ms());
    std::printf("throughput     : %.2f GMAC/s\n", res.gmacs(spec));
    std::printf("verification   : %s (%llu mismatches)\n",
                res.verified ? "PASS" : "FAIL",
                static_cast<unsigned long long>(res.mismatches));
    std::printf("PCIe payload   : %.2f MiB up, %.2f MiB down\n",
                sys.stat("link_up.payload_bytes") / (1024.0 * 1024.0),
                sys.stat("link_dn.payload_bytes") / (1024.0 * 1024.0));
    std::printf("SMMU           : %.0f translations, %.0f walks\n",
                sys.stat("smmu.translations"), sys.stat("smmu.ptw_count"));
    std::printf("host DRAM      : %.2f MiB read, %.2f MiB written\n",
                sys.stat("hostmem.bytes_read") / (1024.0 * 1024.0),
                sys.stat("hostmem.bytes_written") / (1024.0 * 1024.0));

    return res.verified ? 0 : 1;
}
