// Multi-accelerator topology: N MatrixFlow endpoints behind one PCIe
// switch, sharing the x4 uplink — the first scenario class beyond the
// paper's single-device Fig. 1.
//
//   $ ./multi_accel [num-devices] [matrix-size]
//
// Each endpoint runs one verified GEMM concurrently: the CPU rings every
// doorbell back-to-back and the devices contend on the shared uplink for
// their operands. The example prints per-device and aggregate PCIe/DMA
// bandwidth, per-device completion times, and the per-device stat prefixes
// ("mf.", "mf1.", ...) the topology registers.
#include <cstdio>
#include <cstdlib>

#include "core/runner.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    const std::size_t ndev =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
    const std::uint32_t size =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 256;

    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.set_num_devices(ndev);
    core::System sys(cfg);
    core::Runner runner(sys);

    std::printf("accesys multi_accel: %zu MatrixFlow endpoints behind one "
                "switch, PCIe 2.0 x4 shared uplink\n",
                sys.device_count());

    const workload::GemmSpec spec{size, size, size, /*seed=*/7};
    for (std::size_t d = 0; d < sys.device_count(); ++d) {
        runner.dispatch(d, spec, core::Placement::host, /*verify=*/true);
    }
    const auto res = runner.run_dispatched();

    std::printf("\n%-8s %-12s %10s %12s %12s  %s\n", "device", "stats",
                "done(ms)", "DMA(MiB)", "BW(GB/s)", "verified");
    for (const auto& d : res.devices) {
        const std::string prefix = sys.accelerator(d.device).name();
        std::printf("%-8zu %-12s %10.3f %12.2f %12.2f  %s\n", d.device,
                    (prefix + ".*").c_str(),
                    ticks_to_ms(d.done - res.start),
                    static_cast<double>(d.dma_bytes) / (1024.0 * 1024.0),
                    d.gbps(res.elapsed()), d.verified ? "PASS" : "FAIL");
    }

    std::printf("\nsimulated time      : %.3f ms\n", res.ms());
    std::printf("aggregate GEMM      : %.2f GMAC/s\n", res.aggregate_gmacs());
    std::printf("aggregate DMA BW    : %.2f GB/s\n", res.aggregate_gbps());
    std::printf("uplink payload      : %.2f MiB (both directions)\n",
                sys.stat("link_up.payload_bytes") / (1024.0 * 1024.0));
    std::printf("uplink utilization  : %.1f%% / %.1f%% per direction\n",
                100.0 * sys.pcie_uplink().utilization(0),
                100.0 * sys.pcie_uplink().utilization(1));
    std::printf("SMMU streams        : %zu contexts, %.0f translations\n",
                sys.smmu().stream_count(), sys.stat("smmu.translations"));
    for (std::size_t d = 0; d < sys.device_count(); ++d) {
        const std::string s = std::to_string(sys.stream_id_of(d));
        std::printf("  stream%-3s %.0f translations, %.0f walks started\n",
                    s.c_str(),
                    sys.stat("smmu.stream" + s + ".translations"),
                    sys.stat("smmu.stream" + s + ".ptws"));
    }

    return res.all_verified() ? 0 : 1;
}
