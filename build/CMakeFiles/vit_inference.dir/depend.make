# Empty dependencies file for vit_inference.
# This may be replaced when dependencies are built.
