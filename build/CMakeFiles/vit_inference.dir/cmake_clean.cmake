file(REMOVE_RECURSE
  "CMakeFiles/vit_inference.dir/examples/vit_inference.cpp.o"
  "CMakeFiles/vit_inference.dir/examples/vit_inference.cpp.o.d"
  "vit_inference"
  "vit_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vit_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
