file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_memory.dir/bench/bench_table3_memory.cpp.o"
  "CMakeFiles/bench_table3_memory.dir/bench/bench_table3_memory.cpp.o.d"
  "bench_table3_memory"
  "bench_table3_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
