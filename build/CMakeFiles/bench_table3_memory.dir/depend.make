# Empty dependencies file for bench_table3_memory.
# This may be replaced when dependencies are built.
