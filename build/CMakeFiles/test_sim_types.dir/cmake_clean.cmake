file(REMOVE_RECURSE
  "CMakeFiles/test_sim_types.dir/tests/test_sim_types.cpp.o"
  "CMakeFiles/test_sim_types.dir/tests/test_sim_types.cpp.o.d"
  "test_sim_types"
  "test_sim_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
