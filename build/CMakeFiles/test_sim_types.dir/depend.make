# Empty dependencies file for test_sim_types.
# This may be replaced when dependencies are built.
