# Empty dependencies file for test_accel.
# This may be replaced when dependencies are built.
