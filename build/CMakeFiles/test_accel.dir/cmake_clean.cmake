file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/tests/test_accel.cpp.o"
  "CMakeFiles/test_accel.dir/tests/test_accel.cpp.o.d"
  "test_accel"
  "test_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
