# Empty dependencies file for pcie_tuning.
# This may be replaced when dependencies are built.
