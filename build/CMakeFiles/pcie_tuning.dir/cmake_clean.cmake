file(REMOVE_RECURSE
  "CMakeFiles/pcie_tuning.dir/examples/pcie_tuning.cpp.o"
  "CMakeFiles/pcie_tuning.dir/examples/pcie_tuning.cpp.o.d"
  "pcie_tuning"
  "pcie_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcie_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
