# Empty dependencies file for test_xbar.
# This may be replaced when dependencies are built.
