file(REMOVE_RECURSE
  "CMakeFiles/test_xbar.dir/tests/test_xbar.cpp.o"
  "CMakeFiles/test_xbar.dir/tests/test_xbar.cpp.o.d"
  "test_xbar"
  "test_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
