# Empty dependencies file for bench_table2_config.
# This may be replaced when dependencies are built.
