file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_config.dir/bench/bench_table2_config.cpp.o"
  "CMakeFiles/bench_table2_config.dir/bench/bench_table2_config.cpp.o.d"
  "bench_table2_config"
  "bench_table2_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
