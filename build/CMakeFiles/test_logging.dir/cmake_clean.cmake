file(REMOVE_RECURSE
  "CMakeFiles/test_logging.dir/tests/test_logging.cpp.o"
  "CMakeFiles/test_logging.dir/tests/test_logging.cpp.o.d"
  "test_logging"
  "test_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
