# Empty dependencies file for test_logging.
# This may be replaced when dependencies are built.
