file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_roofline.dir/bench/bench_fig2_roofline.cpp.o"
  "CMakeFiles/bench_fig2_roofline.dir/bench/bench_fig2_roofline.cpp.o.d"
  "bench_fig2_roofline"
  "bench_fig2_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
