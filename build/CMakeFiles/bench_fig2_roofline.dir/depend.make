# Empty dependencies file for bench_fig2_roofline.
# This may be replaced when dependencies are built.
