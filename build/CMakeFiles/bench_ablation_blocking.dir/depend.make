# Empty dependencies file for bench_ablation_blocking.
# This may be replaced when dependencies are built.
