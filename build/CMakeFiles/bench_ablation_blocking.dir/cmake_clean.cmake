file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blocking.dir/bench/bench_ablation_blocking.cpp.o"
  "CMakeFiles/bench_ablation_blocking.dir/bench/bench_ablation_blocking.cpp.o.d"
  "bench_ablation_blocking"
  "bench_ablation_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
