file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/tests/test_cache.cpp.o"
  "CMakeFiles/test_cache.dir/tests/test_cache.cpp.o.d"
  "test_cache"
  "test_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
