file(REMOVE_RECURSE
  "CMakeFiles/test_integration_gemm.dir/tests/test_integration_gemm.cpp.o"
  "CMakeFiles/test_integration_gemm.dir/tests/test_integration_gemm.cpp.o.d"
  "test_integration_gemm"
  "test_integration_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
