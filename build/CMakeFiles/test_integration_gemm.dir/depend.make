# Empty dependencies file for test_integration_gemm.
# This may be replaced when dependencies are built.
