# Empty dependencies file for design_space_explorer.
# This may be replaced when dependencies are built.
