file(REMOVE_RECURSE
  "CMakeFiles/design_space_explorer.dir/examples/design_space_explorer.cpp.o"
  "CMakeFiles/design_space_explorer.dir/examples/design_space_explorer.cpp.o.d"
  "design_space_explorer"
  "design_space_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
