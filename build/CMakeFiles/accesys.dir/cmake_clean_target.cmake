file(REMOVE_RECURSE
  "libaccesys.a"
)
