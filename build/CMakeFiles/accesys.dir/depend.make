# Empty dependencies file for accesys.
# This may be replaced when dependencies are built.
