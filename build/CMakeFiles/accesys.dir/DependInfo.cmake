
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/data_mover.cc" "CMakeFiles/accesys.dir/src/accel/data_mover.cc.o" "gcc" "CMakeFiles/accesys.dir/src/accel/data_mover.cc.o.d"
  "/root/repo/src/accel/matrixflow.cc" "CMakeFiles/accesys.dir/src/accel/matrixflow.cc.o" "gcc" "CMakeFiles/accesys.dir/src/accel/matrixflow.cc.o.d"
  "/root/repo/src/accel/systolic_array.cc" "CMakeFiles/accesys.dir/src/accel/systolic_array.cc.o" "gcc" "CMakeFiles/accesys.dir/src/accel/systolic_array.cc.o.d"
  "/root/repo/src/analytic/composition.cc" "CMakeFiles/accesys.dir/src/analytic/composition.cc.o" "gcc" "CMakeFiles/accesys.dir/src/analytic/composition.cc.o.d"
  "/root/repo/src/analytic/roofline.cc" "CMakeFiles/accesys.dir/src/analytic/roofline.cc.o" "gcc" "CMakeFiles/accesys.dir/src/analytic/roofline.cc.o.d"
  "/root/repo/src/cache/cache.cc" "CMakeFiles/accesys.dir/src/cache/cache.cc.o" "gcc" "CMakeFiles/accesys.dir/src/cache/cache.cc.o.d"
  "/root/repo/src/core/runner.cc" "CMakeFiles/accesys.dir/src/core/runner.cc.o" "gcc" "CMakeFiles/accesys.dir/src/core/runner.cc.o.d"
  "/root/repo/src/core/system.cc" "CMakeFiles/accesys.dir/src/core/system.cc.o" "gcc" "CMakeFiles/accesys.dir/src/core/system.cc.o.d"
  "/root/repo/src/core/system_config.cc" "CMakeFiles/accesys.dir/src/core/system_config.cc.o" "gcc" "CMakeFiles/accesys.dir/src/core/system_config.cc.o.d"
  "/root/repo/src/core/topology.cc" "CMakeFiles/accesys.dir/src/core/topology.cc.o" "gcc" "CMakeFiles/accesys.dir/src/core/topology.cc.o.d"
  "/root/repo/src/cpu/host_cpu.cc" "CMakeFiles/accesys.dir/src/cpu/host_cpu.cc.o" "gcc" "CMakeFiles/accesys.dir/src/cpu/host_cpu.cc.o.d"
  "/root/repo/src/dma/dma_engine.cc" "CMakeFiles/accesys.dir/src/dma/dma_engine.cc.o" "gcc" "CMakeFiles/accesys.dir/src/dma/dma_engine.cc.o.d"
  "/root/repo/src/mem/addr_range.cc" "CMakeFiles/accesys.dir/src/mem/addr_range.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/addr_range.cc.o.d"
  "/root/repo/src/mem/dram_config.cc" "CMakeFiles/accesys.dir/src/mem/dram_config.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/dram_config.cc.o.d"
  "/root/repo/src/mem/dram_timing.cc" "CMakeFiles/accesys.dir/src/mem/dram_timing.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/dram_timing.cc.o.d"
  "/root/repo/src/mem/mem_ctrl.cc" "CMakeFiles/accesys.dir/src/mem/mem_ctrl.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/mem_ctrl.cc.o.d"
  "/root/repo/src/mem/packet.cc" "CMakeFiles/accesys.dir/src/mem/packet.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/packet.cc.o.d"
  "/root/repo/src/mem/port.cc" "CMakeFiles/accesys.dir/src/mem/port.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/port.cc.o.d"
  "/root/repo/src/mem/traffic_gen.cc" "CMakeFiles/accesys.dir/src/mem/traffic_gen.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/traffic_gen.cc.o.d"
  "/root/repo/src/mem/xbar.cc" "CMakeFiles/accesys.dir/src/mem/xbar.cc.o" "gcc" "CMakeFiles/accesys.dir/src/mem/xbar.cc.o.d"
  "/root/repo/src/pcie/endpoint.cc" "CMakeFiles/accesys.dir/src/pcie/endpoint.cc.o" "gcc" "CMakeFiles/accesys.dir/src/pcie/endpoint.cc.o.d"
  "/root/repo/src/pcie/link.cc" "CMakeFiles/accesys.dir/src/pcie/link.cc.o" "gcc" "CMakeFiles/accesys.dir/src/pcie/link.cc.o.d"
  "/root/repo/src/pcie/root_complex.cc" "CMakeFiles/accesys.dir/src/pcie/root_complex.cc.o" "gcc" "CMakeFiles/accesys.dir/src/pcie/root_complex.cc.o.d"
  "/root/repo/src/pcie/switch.cc" "CMakeFiles/accesys.dir/src/pcie/switch.cc.o" "gcc" "CMakeFiles/accesys.dir/src/pcie/switch.cc.o.d"
  "/root/repo/src/pcie/tlp.cc" "CMakeFiles/accesys.dir/src/pcie/tlp.cc.o" "gcc" "CMakeFiles/accesys.dir/src/pcie/tlp.cc.o.d"
  "/root/repo/src/sim/event.cc" "CMakeFiles/accesys.dir/src/sim/event.cc.o" "gcc" "CMakeFiles/accesys.dir/src/sim/event.cc.o.d"
  "/root/repo/src/sim/logging.cc" "CMakeFiles/accesys.dir/src/sim/logging.cc.o" "gcc" "CMakeFiles/accesys.dir/src/sim/logging.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "CMakeFiles/accesys.dir/src/sim/simulator.cc.o" "gcc" "CMakeFiles/accesys.dir/src/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "CMakeFiles/accesys.dir/src/sim/stats.cc.o" "gcc" "CMakeFiles/accesys.dir/src/sim/stats.cc.o.d"
  "/root/repo/src/smmu/page_table.cc" "CMakeFiles/accesys.dir/src/smmu/page_table.cc.o" "gcc" "CMakeFiles/accesys.dir/src/smmu/page_table.cc.o.d"
  "/root/repo/src/smmu/smmu.cc" "CMakeFiles/accesys.dir/src/smmu/smmu.cc.o" "gcc" "CMakeFiles/accesys.dir/src/smmu/smmu.cc.o.d"
  "/root/repo/src/workload/gemm.cc" "CMakeFiles/accesys.dir/src/workload/gemm.cc.o" "gcc" "CMakeFiles/accesys.dir/src/workload/gemm.cc.o.d"
  "/root/repo/src/workload/vit.cc" "CMakeFiles/accesys.dir/src/workload/vit.cc.o" "gcc" "CMakeFiles/accesys.dir/src/workload/vit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
