# Empty dependencies file for test_packet.
# This may be replaced when dependencies are built.
