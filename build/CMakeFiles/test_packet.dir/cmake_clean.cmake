file(REMOVE_RECURSE
  "CMakeFiles/test_packet.dir/tests/test_packet.cpp.o"
  "CMakeFiles/test_packet.dir/tests/test_packet.cpp.o.d"
  "test_packet"
  "test_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
