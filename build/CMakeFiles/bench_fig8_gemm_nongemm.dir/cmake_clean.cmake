file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gemm_nongemm.dir/bench/bench_fig8_gemm_nongemm.cpp.o"
  "CMakeFiles/bench_fig8_gemm_nongemm.dir/bench/bench_fig8_gemm_nongemm.cpp.o.d"
  "bench_fig8_gemm_nongemm"
  "bench_fig8_gemm_nongemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gemm_nongemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
