# Empty dependencies file for bench_fig8_gemm_nongemm.
# This may be replaced when dependencies are built.
