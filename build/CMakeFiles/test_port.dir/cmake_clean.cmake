file(REMOVE_RECURSE
  "CMakeFiles/test_port.dir/tests/test_port.cpp.o"
  "CMakeFiles/test_port.dir/tests/test_port.cpp.o.d"
  "test_port"
  "test_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
