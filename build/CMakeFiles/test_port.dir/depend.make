# Empty dependencies file for test_port.
# This may be replaced when dependencies are built.
