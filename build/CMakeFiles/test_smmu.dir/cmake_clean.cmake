file(REMOVE_RECURSE
  "CMakeFiles/test_smmu.dir/tests/test_smmu.cpp.o"
  "CMakeFiles/test_smmu.dir/tests/test_smmu.cpp.o.d"
  "test_smmu"
  "test_smmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
