# Empty dependencies file for test_smmu.
# This may be replaced when dependencies are built.
