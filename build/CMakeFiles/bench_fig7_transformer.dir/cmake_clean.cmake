file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_transformer.dir/bench/bench_fig7_transformer.cpp.o"
  "CMakeFiles/bench_fig7_transformer.dir/bench/bench_fig7_transformer.cpp.o.d"
  "bench_fig7_transformer"
  "bench_fig7_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
