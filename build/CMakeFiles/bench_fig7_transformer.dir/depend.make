# Empty dependencies file for bench_fig7_transformer.
# This may be replaced when dependencies are built.
