# Empty dependencies file for test_dma.
# This may be replaced when dependencies are built.
