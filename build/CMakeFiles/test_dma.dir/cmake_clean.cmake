file(REMOVE_RECURSE
  "CMakeFiles/test_dma.dir/tests/test_dma.cpp.o"
  "CMakeFiles/test_dma.dir/tests/test_dma.cpp.o.d"
  "test_dma"
  "test_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
