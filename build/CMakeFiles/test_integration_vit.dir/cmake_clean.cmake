file(REMOVE_RECURSE
  "CMakeFiles/test_integration_vit.dir/tests/test_integration_vit.cpp.o"
  "CMakeFiles/test_integration_vit.dir/tests/test_integration_vit.cpp.o.d"
  "test_integration_vit"
  "test_integration_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
