# Empty dependencies file for test_integration_vit.
# This may be replaced when dependencies are built.
