file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bw_latency.dir/bench/bench_fig6_bw_latency.cpp.o"
  "CMakeFiles/bench_fig6_bw_latency.dir/bench/bench_fig6_bw_latency.cpp.o.d"
  "bench_fig6_bw_latency"
  "bench_fig6_bw_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bw_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
