# Empty dependencies file for bench_fig6_bw_latency.
# This may be replaced when dependencies are built.
