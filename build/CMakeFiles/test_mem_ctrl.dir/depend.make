# Empty dependencies file for test_mem_ctrl.
# This may be replaced when dependencies are built.
