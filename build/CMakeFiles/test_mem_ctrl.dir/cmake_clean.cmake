file(REMOVE_RECURSE
  "CMakeFiles/test_mem_ctrl.dir/tests/test_mem_ctrl.cpp.o"
  "CMakeFiles/test_mem_ctrl.dir/tests/test_mem_ctrl.cpp.o.d"
  "test_mem_ctrl"
  "test_mem_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
