file(REMOVE_RECURSE
  "CMakeFiles/test_analytic.dir/tests/test_analytic.cpp.o"
  "CMakeFiles/test_analytic.dir/tests/test_analytic.cpp.o.d"
  "test_analytic"
  "test_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
