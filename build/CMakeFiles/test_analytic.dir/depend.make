# Empty dependencies file for test_analytic.
# This may be replaced when dependencies are built.
