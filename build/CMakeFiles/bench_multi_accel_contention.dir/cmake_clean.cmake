file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_accel_contention.dir/bench/bench_multi_accel_contention.cpp.o"
  "CMakeFiles/bench_multi_accel_contention.dir/bench/bench_multi_accel_contention.cpp.o.d"
  "bench_multi_accel_contention"
  "bench_multi_accel_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_accel_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
