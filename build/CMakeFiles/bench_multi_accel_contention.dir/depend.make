# Empty dependencies file for bench_multi_accel_contention.
# This may be replaced when dependencies are built.
