file(REMOVE_RECURSE
  "CMakeFiles/multi_accel.dir/examples/multi_accel.cpp.o"
  "CMakeFiles/multi_accel.dir/examples/multi_accel.cpp.o.d"
  "multi_accel"
  "multi_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
