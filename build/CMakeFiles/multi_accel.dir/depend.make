# Empty dependencies file for multi_accel.
# This may be replaced when dependencies are built.
