# Empty dependencies file for test_pcie_link.
# This may be replaced when dependencies are built.
