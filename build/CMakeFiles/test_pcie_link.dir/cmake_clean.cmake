file(REMOVE_RECURSE
  "CMakeFiles/test_pcie_link.dir/tests/test_pcie_link.cpp.o"
  "CMakeFiles/test_pcie_link.dir/tests/test_pcie_link.cpp.o.d"
  "test_pcie_link"
  "test_pcie_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcie_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
