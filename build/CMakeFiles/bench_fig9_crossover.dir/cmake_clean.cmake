file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_crossover.dir/bench/bench_fig9_crossover.cpp.o"
  "CMakeFiles/bench_fig9_crossover.dir/bench/bench_fig9_crossover.cpp.o.d"
  "bench_fig9_crossover"
  "bench_fig9_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
