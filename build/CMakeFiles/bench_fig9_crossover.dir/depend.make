# Empty dependencies file for bench_fig9_crossover.
# This may be replaced when dependencies are built.
