file(REMOVE_RECURSE
  "CMakeFiles/test_system_config.dir/tests/test_system_config.cpp.o"
  "CMakeFiles/test_system_config.dir/tests/test_system_config.cpp.o.d"
  "test_system_config"
  "test_system_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
