# Empty dependencies file for test_system_config.
# This may be replaced when dependencies are built.
