file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_features.dir/bench/bench_table1_features.cpp.o"
  "CMakeFiles/bench_table1_features.dir/bench/bench_table1_features.cpp.o.d"
  "bench_table1_features"
  "bench_table1_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
