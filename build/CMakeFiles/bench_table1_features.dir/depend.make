# Empty dependencies file for bench_table1_features.
# This may be replaced when dependencies are built.
