file(REMOVE_RECURSE
  "CMakeFiles/test_topology.dir/tests/test_topology.cpp.o"
  "CMakeFiles/test_topology.dir/tests/test_topology.cpp.o.d"
  "test_topology"
  "test_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
