# Empty dependencies file for test_topology.
# This may be replaced when dependencies are built.
