file(REMOVE_RECURSE
  "CMakeFiles/debug_vit.dir/tools/debug_vit.cc.o"
  "CMakeFiles/debug_vit.dir/tools/debug_vit.cc.o.d"
  "debug_vit"
  "debug_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
