# Empty dependencies file for debug_vit.
# This may be replaced when dependencies are built.
