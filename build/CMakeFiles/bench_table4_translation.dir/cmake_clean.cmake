file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_translation.dir/bench/bench_table4_translation.cpp.o"
  "CMakeFiles/bench_table4_translation.dir/bench/bench_table4_translation.cpp.o.d"
  "bench_table4_translation"
  "bench_table4_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
