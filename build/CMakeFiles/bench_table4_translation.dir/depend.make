# Empty dependencies file for bench_table4_translation.
# This may be replaced when dependencies are built.
