# Empty dependencies file for test_pcie_fabric.
# This may be replaced when dependencies are built.
