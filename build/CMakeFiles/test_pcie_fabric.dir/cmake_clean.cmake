file(REMOVE_RECURSE
  "CMakeFiles/test_pcie_fabric.dir/tests/test_pcie_fabric.cpp.o"
  "CMakeFiles/test_pcie_fabric.dir/tests/test_pcie_fabric.cpp.o.d"
  "test_pcie_fabric"
  "test_pcie_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcie_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
