# Empty dependencies file for bench_fig5_memtype.
# This may be replaced when dependencies are built.
