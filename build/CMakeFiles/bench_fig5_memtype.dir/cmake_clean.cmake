file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_memtype.dir/bench/bench_fig5_memtype.cpp.o"
  "CMakeFiles/bench_fig5_memtype.dir/bench/bench_fig5_memtype.cpp.o.d"
  "bench_fig5_memtype"
  "bench_fig5_memtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_memtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
