# Empty dependencies file for bench_fig4_packet_size.
# This may be replaced when dependencies are built.
