file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_packet_size.dir/bench/bench_fig4_packet_size.cpp.o"
  "CMakeFiles/bench_fig4_packet_size.dir/bench/bench_fig4_packet_size.cpp.o.d"
  "bench_fig4_packet_size"
  "bench_fig4_packet_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_packet_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
