file(REMOVE_RECURSE
  "CMakeFiles/debug_gemm.dir/tools/debug_gemm.cc.o"
  "CMakeFiles/debug_gemm.dir/tools/debug_gemm.cc.o.d"
  "debug_gemm"
  "debug_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
