# Empty dependencies file for debug_gemm.
# This may be replaced when dependencies are built.
